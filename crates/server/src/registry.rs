//! The registry lifecycle subsystem: `(path, eps, seed) → cached sketch`,
//! sharded, budgeted, persistent, and self-invalidating.
//!
//! The paper's economics are: building the `Θ(m/√ε)` tuple sample costs
//! a full scan, answering a query against it costs `O(|A|·r log r)`. So
//! the registry builds once and every subsequent `audit`/`key`/`check`
//! shares the resident [`TupleSampleFilter`]. On top of that single
//! invariant this module layers the full cache lifecycle:
//!
//! * **Sharding.** Keys are spread over [`RegistryConfig::shards`]
//!   independent `RwLock<HashMap>` shards by key hash, so a cache hit
//!   takes only a shared read lock on one shard — concurrent readers of
//!   *different* datasets (and of the same dataset) never serialise on
//!   a global mutex. Entries are immutable `Arc`s, so the read path
//!   clones a pointer and leaves.
//! * **Build collapsing.** Concurrent first requests for the same key
//!   are collapsed onto one build via a per-entry [`OnceLock`]: the
//!   losers block until the winner's artifacts are ready, so two
//!   clients racing on a cold dataset still cause exactly one CSV scan.
//! * **LRU eviction.** With [`RegistryConfig::cache_bytes`] set, every
//!   admit that pushes the resident total (each entry's
//!   [`Entry::stored_bytes`]) over budget evicts least-recently-used
//!   entries until the total fits again. The entry being returned is
//!   never evicted, so a single over-budget dataset still works.
//! * **Disk persistence.** With [`RegistryConfig::cache_dir`] set,
//!   every sample built from a source scan is persisted (sample CSV +
//!   params + source stat) and a later miss — in this process or after
//!   a restart — restores the sketch from disk instead of re-scanning
//!   the (possibly multi-GB) source. Samples are `Θ(m/√ε)`, so the
//!   warm tier is tiny.
//! * **File-change invalidation.** Every hit re-stamps the source file
//!   ([`SourceStamp`]: length, mtime, an FNV-64 fingerprint over a
//!   fixed prefix, *and* an FNV-64 over the whole content) and
//!   classifies it against the stamp captured *before* the building
//!   scan started. For a same-length same-mtime file the stat alone is
//!   trusted only once it *can* prove freshness — a stamp captured
//!   within the mtime race window of the file's own mtime
//!   ([`MTIME_RACE_WINDOW_MS`]) re-reads the prefix fingerprint on
//!   each hit until one check passes after the window closes, so an
//!   in-place rewrite hiding inside the filesystem's timestamp
//!   resolution is caught (the false-negative family). The remaining
//!   blind spots are a racy same-length rewrite entirely beyond the
//!   fingerprinted prefix, and deliberate mtime forgery (a rewrite
//!   that pins the old mtime back from *outside* the race window).
//!   Disk-restored entries carry the same stamp, so persistence never
//!   resurrects stale data.
//! * **Append absorption.** A *grown* source whose **entire** old
//!   content re-hashes to the recorded whole-content FNV (and whose
//!   old bytes ended on a row boundary) is a pure append: instead of
//!   rebuilding, the registry resumes the entry's paused ingest state
//!   ([`qid_core::stream::TupleIngest`]) and feeds only the new suffix
//!   through the reservoir, the column sketches, and — when the
//!   sketch was built in-process — the pair reservoirs. The result is
//!   bit-identical to a cold rebuild over the whole file, at
//!   hash-plus-suffix cost (`cache_append_updates`). A rewrite beyond
//!   the prefix combined with growth therefore rebuilds — it can
//!   never be absorbed as an append.
//! * **Background revalidation.** [`Registry::sweep`] (driven by the
//!   server's `--sweep-ms` thread) walks resident entries, re-stamps
//!   fresh ones (keeping the [`Registry::peek`] window open so the
//!   zero-alloc fast path never falls back), and absorbs/rebuilds
//!   changed ones ahead of traffic (`cache_sweep_refreshes`).
//! * **Warm-tier GC.** With [`RegistryConfig::cache_disk_bytes`] set,
//!   persisted artifacts are garbage-collected oldest-first (grouped
//!   by key stem) whenever a persist pushes the directory over budget,
//!   so never-again-requested keys cannot grow the cache dir forever.
//!
//! The full state machine (also documented in `docs/ARCHITECTURE.md`):
//!
//! ```text
//!            ┌────── restore hit ──────────────┐
//!  miss ──▶ building ── scan ok ──▶ cached ──▶ persisted (sample on disk)
//!            │                       │  ▲ ▲
//!            └─ error (slot dropped) │  │ └ absorb suffix ◀─ appended
//!                                    │  └── rebuild (miss) ◀─ stale
//!                                    ├──▶ appended (source grew, prefix intact)
//!                                    ├──▶ stale    (source rewritten/truncated)
//!                                    ├──▶ evicted  (LRU under budget pressure)
//!                                    └──▶ unloaded (explicit protocol command)
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Instant, UNIX_EPOCH};

use qid_core::filter::{FilterParams, SeparationFilter, TupleSampleFilter};
use qid_core::sketch::{DistinctSketch, NonSeparationSketch, SketchParams};
use qid_core::stream::{sketch_from_stream, IngestCheckpoint, PairIngest, SkipState, TupleIngest};
use qid_dataset::csv::{read_csv_path, read_csv_str, write_csv, CsvOptions, CsvTupleSource};
use qid_dataset::{AttrId, Dataset, DatasetError, DatasetTupleSource, TupleSource, Value};

use crate::json::{self, obj, s, Json};
use crate::proto::{sketch_params, DatasetRef, LoadMode};

/// Retention parameter `k` of the per-column [`DistinctSketch`]s built
/// for stream-mode entries: `stats` answers are exact below `k`
/// distinct values per column and `(1 ± O(1/√k)) ≈ ±6%` estimates
/// above, at `≤ 8·k` bytes per column.
pub const COLUMN_SKETCH_K: usize = 256;

/// The registry's exact cache identity. `eps` is keyed by bit pattern
/// (the wire carries the same `f64` both ways, so equal requests hash
/// equal), and the path is canonicalised when possible so `./a.csv` and
/// `a.csv` share an entry.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonicalised dataset path.
    pub path: String,
    /// `eps.to_bits()`.
    pub eps_bits: u64,
    /// Sampling seed.
    pub seed: u64,
}

impl CacheKey {
    /// Builds the key for a request's dataset reference.
    pub fn of(ds: &DatasetRef) -> CacheKey {
        let path = std::fs::canonicalize(&ds.path)
            .ok()
            .and_then(|p| p.to_str().map(str::to_string))
            .unwrap_or_else(|| ds.path.clone());
        CacheKey {
            path,
            eps_bits: ds.eps.to_bits(),
            seed: ds.seed,
        }
    }

    /// 64-bit FNV-1a over the full key — the persistence file stem.
    /// (Shard selection uses the std hasher via `Registry::shard`, not
    /// this.)
    pub fn fnv64(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for byte in self
            .path
            .as_bytes()
            .iter()
            .copied()
            .chain(self.eps_bits.to_le_bytes())
            .chain(self.seed.to_le_bytes())
        {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// How many leading bytes of the source file the content fingerprint
/// covers. Large enough that any realistic header + early rows are
/// inside it, small enough that re-stamping a hit is one buffered read
/// of a page-cached region, not a scan.
pub const FINGERPRINT_PREFIX: u64 = 64 * 1024;

/// How close (milliseconds) a stamp's capture time must be to the
/// file's mtime for a later same-mtime rewrite to be able to hide from
/// a stat-based check. Sized for the coarsest common filesystem
/// timestamp granularity (FAT: 2 s) plus a little scheduler slack.
/// Outside this window a rewrite necessarily moves the mtime, so the
/// stat alone proves freshness; inside it, hits re-read the content
/// fingerprint (the git "racy stat" discipline).
pub const MTIME_RACE_WINDOW_MS: u64 = 2_500;

/// The source-file identity captured when an entry is built: length,
/// modification time, an FNV-64 fingerprint over the first
/// [`FINGERPRINT_PREFIX`] bytes, and an FNV-64 over the entire
/// content. Hits classify a fresh stamp against this to catch in-place
/// rewrites (even same-length ones inside the filesystem's mtime
/// resolution, via the fingerprint) and to recognise pure appends —
/// the whole-content hash is what proves a grown file's old bytes are
/// untouched, however large the file is.
#[derive(Clone, Copy, Debug)]
pub struct SourceStamp {
    /// File length in bytes.
    pub len: u64,
    /// Modification time, seconds since the Unix epoch.
    pub mtime_s: u64,
    /// Sub-second part of the modification time, nanoseconds.
    pub mtime_ns: u32,
    /// FNV-1a over the first `min(len, FINGERPRINT_PREFIX)` bytes.
    pub prefix_fnv: u64,
    /// FNV-1a over all `len` bytes. On a grown file, the running hash
    /// at the old length must equal the old stamp's `full_fnv` for the
    /// growth to classify as a pure append.
    pub full_fnv: u64,
    /// Wall-clock capture time, milliseconds since the Unix epoch.
    /// Excluded from equality: it records *when* the identity was
    /// taken, not what the file contained — see [`SourceStamp::eq`].
    pub captured_ms: u64,
}

/// Two stamps are equal iff they describe the same file *content*
/// (length, mtime, both hashes). The capture time is deliberately
/// ignored: re-stamping an unchanged file at a later moment must
/// compare equal, or every persistence restore and stale check would
/// see a phantom change.
impl PartialEq for SourceStamp {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self.mtime_s == other.mtime_s
            && self.mtime_ns == other.mtime_ns
            && self.prefix_fnv == other.prefix_fnv
            && self.full_fnv == other.full_fnv
    }
}

impl Eq for SourceStamp {}

impl SourceStamp {
    /// Stats `path` and hashes its content (prefix window + full
    /// length); `None` if the file cannot be statted or read (missing,
    /// permissions) or its mtime predates the epoch. The stat is taken
    /// *before* the read, matching the build discipline: a file
    /// mutated between the two yields a stamp that cannot match any
    /// future capture, which classifies as stale — never as silently
    /// fresh.
    pub fn capture(path: &str) -> Option<SourceStamp> {
        let captured_ms = unix_ms_now();
        let meta = std::fs::metadata(path).ok()?;
        let mtime = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(UNIX_EPOCH).ok())?;
        let len = meta.len();
        let scan = scan_content(path, len, len).ok()?;
        Some(SourceStamp {
            len,
            mtime_s: mtime.as_secs(),
            mtime_ns: mtime.subsec_nanos(),
            prefix_fnv: scan.prefix_fnv,
            full_fnv: scan.full_fnv,
            captured_ms,
        })
    }

    /// The file's mtime as milliseconds since the Unix epoch.
    fn mtime_ms(&self) -> u64 {
        self.mtime_s
            .saturating_mul(1_000)
            .saturating_add(u64::from(self.mtime_ns) / 1_000_000)
    }

    /// The wall-clock moment after which any rewrite of the file must
    /// move its mtime past the recorded one.
    fn race_horizon_ms(&self) -> u64 {
        self.mtime_ms().saturating_add(MTIME_RACE_WINDOW_MS)
    }

    /// True while a same-length same-mtime rewrite could still be
    /// hiding from the stat: the stamp was captured inside the mtime
    /// race window, so content written after the capture may share the
    /// recorded mtime. Racy stamps pay a fingerprint re-read on hits
    /// until one check passes beyond the horizon.
    fn is_racy(&self) -> bool {
        self.captured_ms < self.race_horizon_ms()
    }
}

/// Wall-clock milliseconds since the Unix epoch (0 on a pre-epoch
/// clock, which only makes every stamp permanently racy — safe).
fn unix_ms_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// The running FNV-1a state of one sequential read of a source file:
/// the hash at the prefix-window boundary, at the caller's `mark`
/// (the old length, on grown-file checks), and at the end, plus the
/// byte just before the mark (the old content's final byte — the
/// row-boundary check) and how many bytes were actually read.
struct ContentScan {
    /// Hash after `min(upto, FINGERPRINT_PREFIX)` bytes.
    prefix_fnv: u64,
    /// Hash after `mark` bytes.
    mark_fnv: u64,
    /// Hash after every byte read.
    full_fnv: u64,
    /// The byte at offset `mark - 1`, if the read got that far.
    byte_before_mark: Option<u8>,
    /// Bytes actually read — short of `upto` when the file shrank
    /// between the stat and the read.
    read: u64,
}

/// One buffered sequential read of `path`'s first `upto` bytes,
/// tracking the running FNV-1a at every boundary a freshness check
/// needs (`mark ≤ upto`). A single read serves capture (`mark ==
/// upto`), the same-length fingerprint re-check (`upto ≤
/// FINGERPRINT_PREFIX`), and the grown-file append check (`mark ==
/// old length`) — so no check ever reads the file twice.
fn scan_content(path: &str, mark: u64, upto: u64) -> std::io::Result<ContentScan> {
    debug_assert!(mark <= upto);
    let mut file = std::fs::File::open(path)?;
    let mut h = FNV_OFFSET;
    let mut scan = ContentScan {
        prefix_fnv: h,
        mark_fnv: h,
        full_fnv: h,
        byte_before_mark: None,
        read: 0,
    };
    let mut pos: u64 = 0;
    let mut buf = [0u8; 8192];
    while pos < upto {
        let want = (upto - pos).min(buf.len() as u64) as usize;
        let got = file.read(&mut buf[..want])?;
        if got == 0 {
            // Shorter than the stat said (raced a truncation): the
            // partial hashes cannot match a complete stamp, so the
            // caller classifies this as stale.
            break;
        }
        for &b in &buf[..got] {
            if pos + 1 == mark {
                scan.byte_before_mark = Some(b);
            }
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            pos += 1;
            if pos == mark {
                scan.mark_fnv = h;
            }
            if pos == FINGERPRINT_PREFIX {
                scan.prefix_fnv = h;
            }
        }
    }
    if upto <= FINGERPRINT_PREFIX {
        // The whole file fits inside the prefix window.
        scan.prefix_fnv = h;
    }
    scan.full_fnv = h;
    scan.read = pos;
    Ok(scan)
}

/// The verdict of re-stamping a source file against the stamp its
/// entry was built from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Freshness {
    /// Unchanged (or unstattable — the sample is all we have, and the
    /// paper's point is that it keeps answering queries).
    Fresh,
    /// The file *grew*, the old prefix window hashes identically, and
    /// the old bytes ended on a row boundary: a pure append. `new` is
    /// the full stamp of the grown file (captured before the check
    /// reads), ready to record on the absorbed entry.
    Appended {
        /// Stamp of the grown file.
        new: SourceStamp,
    },
    /// Rewritten, truncated, or a grown file whose prefix changed (or
    /// whose old tail straddles a row): only a full rebuild is sound.
    Stale,
}

/// Classifies the current state of `path` against the stamp `then` the
/// entry was built from. Entries built from an unstattable source
/// (`then == None`) never invalidate. The returned flag is `true` iff
/// the same-length arm *read and matched* the content fingerprint —
/// the caller uses it to settle the racy-stat state (see
/// [`Registry::classify_for_slot`]).
///
/// With `verify_content`, the same-length same-mtime arm re-reads the
/// prefix fingerprint instead of trusting the stat — required while
/// the stamp is racy ([`SourceStamp::is_racy`]): a rewrite inside the
/// filesystem's mtime resolution is invisible to the stat alone. The
/// residual blind spots are a *racy* same-length rewrite that only
/// touches bytes beyond [`FINGERPRINT_PREFIX`], and deliberate mtime
/// forgery from outside the race window.
///
/// The grown arm never trusts a prefix alone: the entire old content
/// is re-hashed and must equal the stamp's whole-content FNV before
/// the growth classifies as [`Freshness::Appended`] — a rewrite
/// beyond the prefix combined with growth is `Stale`, not a silently
/// absorbed append.
fn classify(then: Option<SourceStamp>, path: &str, verify_content: bool) -> (Freshness, bool) {
    let captured_ms = unix_ms_now();
    let Some(then) = then else {
        return (Freshness::Fresh, false);
    };
    let Ok(meta) = std::fs::metadata(path) else {
        return (Freshness::Fresh, false); // missing ≠ stale
    };
    let Some(mtime) = meta
        .modified()
        .ok()
        .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
    else {
        return (Freshness::Fresh, false);
    };
    let (mtime_s, mtime_ns) = (mtime.as_secs(), mtime.subsec_nanos());
    let len = meta.len();
    if len < then.len {
        return (Freshness::Stale, false); // truncated
    }
    if len == then.len {
        if mtime_s != then.mtime_s || mtime_ns != then.mtime_ns {
            return (Freshness::Stale, false);
        }
        if !verify_content {
            // Outside the race window (or already settled) a matching
            // stat is proof: any rewrite would have moved the mtime.
            return (Freshness::Fresh, false);
        }
        // Same length, same mtime, racy stamp: the stat alone proves
        // nothing (the false-negative family) — verify the content
        // fingerprint.
        let upto = len.min(FINGERPRINT_PREFIX);
        return match scan_content(path, 0, upto) {
            Ok(scan) if scan.read == upto && scan.prefix_fnv == then.prefix_fnv => {
                (Freshness::Fresh, true)
            }
            Ok(_) => (Freshness::Stale, false),
            Err(_) => (Freshness::Fresh, false), // unreadable now: keep serving
        };
    }
    // Grown. One read re-hashes the *entire* old content (a prefix
    // match is not enough — a rewrite beyond it plus growth must
    // rebuild, not absorb) and continues over the suffix, yielding the
    // grown file's prefix and whole-content hashes for the new stamp.
    if then.len == 0 {
        return (Freshness::Stale, false);
    }
    let Ok(scan) = scan_content(path, then.len, len) else {
        return (Freshness::Fresh, false);
    };
    if scan.read < len || scan.mark_fnv != then.full_fnv {
        // Shrank mid-read (volatile) or the old bytes changed: only a
        // full rebuild is sound.
        return (Freshness::Stale, false);
    }
    // The old content must end exactly on a row boundary; otherwise
    // the append completed a partial final line and the already-counted
    // last row changed meaning — only a full rebuild is sound.
    if scan.byte_before_mark != Some(b'\n') {
        return (Freshness::Stale, false);
    }
    (
        Freshness::Appended {
            new: SourceStamp {
                len,
                mtime_s,
                mtime_ns,
                prefix_fnv: scan.prefix_fnv,
                full_fnv: scan.full_fnv,
                captured_ms,
            },
        },
        false,
    )
}

/// The artifacts cached for one dataset: the tuple sample (Theorem 1),
/// the per-column distinct-count sketches, the lazily built
/// non-separation sketch (Theorem 2), and — for memory-mode loads —
/// the materialised dataset.
#[derive(Debug)]
pub struct Entry {
    /// The resident tuple-sample filter (always present).
    pub filter: TupleSampleFilter,
    /// The fully materialised dataset — `None` for stream-mode loads
    /// and disk-restored entries, where only the sample is kept.
    pub dataset: Option<Dataset>,
    /// Per-column KMV distinct-count sketches (one per attribute, in
    /// schema order), built during the loading pass so `stats` always
    /// answers without materialising. Every construction path produces
    /// them (build, restore, append absorb), so `stats` on a stream
    /// entry can never fall back to a silent full materialisation.
    pub cols: Vec<DistinctSketch>,
    /// Rows seen when the entry was built (stream length or `n_rows`).
    pub rows: usize,
    /// Attribute count.
    pub attrs: usize,
    /// Approximate resident bytes at build time: the sample, the
    /// column sketches, the materialised dataset's codes (if any), and
    /// the retained resumable-ingest tuples (a second copy of the
    /// sample rows, kept so appends can resume). Together with the
    /// lazily added non-separation sketch bytes this is what LRU
    /// eviction charges against [`RegistryConfig::cache_bytes`].
    pub stored_bytes: usize,
    /// Source-file stamp captured *before* the building scan, so a
    /// file rewritten mid-scan still reads as changed on the next hit.
    /// `None` when the source could not be statted.
    pub source: Option<SourceStamp>,
    /// The paused streaming build (reservoir + RNG) this entry's
    /// sample came from. `Some` for stream-built and checkpoint-
    /// restored entries; appends resume it over just the new suffix.
    /// `None` for memory-mode entries (they rebuild fully — the
    /// materialised dataset must cover the appended rows anyway) and
    /// pre-checkpoint restores.
    ingest: Option<TupleIngest>,
    /// The paused pair-sample build behind the non-separation sketch,
    /// recorded when [`Registry::sketch_for`] builds by scanning in
    /// process — so an append can advance the sketch over the suffix
    /// instead of re-scanning. Written at most once, like the sketch.
    pair_ingest: OnceLock<PairIngest>,
    /// The lazily built Theorem 2 sketch: written once (concurrent
    /// `sketch` queries collapse onto one build), dropped with the
    /// entry.
    sketch_cell: OnceLock<Result<Arc<NonSeparationSketch>, String>>,
    /// Bytes the built sketch adds to the resident total; swapped to 0
    /// exactly once when the bytes are released (eviction, unload, or
    /// reclaim after a lost race), so the accounting never
    /// double-subtracts.
    sketch_bytes: std::sync::atomic::AtomicUsize,
}

impl Entry {
    fn new(
        filter: TupleSampleFilter,
        dataset: Option<Dataset>,
        cols: Vec<DistinctSketch>,
        rows: usize,
        attrs: usize,
        source: Option<SourceStamp>,
        ingest: Option<TupleIngest>,
    ) -> Entry {
        let stored_bytes = filter.stored_bytes()
            + dataset.as_ref().map_or(0, |ds| ds.code_bytes())
            + cols.iter().map(DistinctSketch::stored_bytes).sum::<usize>()
            + ingest.as_ref().map_or(0, TupleIngest::retained_bytes);
        Entry {
            filter,
            dataset,
            cols,
            rows,
            attrs,
            stored_bytes,
            source,
            ingest,
            pair_ingest: OnceLock::new(),
            sketch_cell: OnceLock::new(),
            sketch_bytes: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// The cached non-separation sketch, if one has been built for this
    /// entry (see [`Registry::sketch_for`]).
    pub fn sketch(&self) -> Option<Arc<NonSeparationSketch>> {
        self.sketch_cell
            .get()
            .and_then(|r| r.as_ref().ok().cloned())
    }

    /// True iff this entry can absorb a pure append without a re-scan
    /// (it carries resumable ingest state).
    pub fn append_capable(&self) -> bool {
        self.ingest.is_some()
    }
}

/// One cache slot: the build cell plus the LRU stamp. The cell is
/// written exactly once; the stamp is bumped on every touch.
#[derive(Debug, Default)]
struct SlotInner {
    cell: OnceLock<Result<Arc<Entry>, String>>,
    last_used: AtomicU64,
    /// When this slot's entry last passed a source-stat freshness check,
    /// as milliseconds since the registry was created **plus one** (so
    /// `0` means "never validated"). [`Registry::peek`] serves without
    /// re-statting while this stamp is younger than
    /// [`RegistryConfig::revalidate_ms`].
    validated: AtomicU64,
    /// True once the stat alone is known to prove freshness for this
    /// slot's entry: either the stamp was never racy, or a fingerprint
    /// re-read passed *after* the mtime race window closed (any later
    /// rewrite must move the mtime). Until then, every hit on a racy
    /// stamp pays the prefix re-read — see
    /// [`Registry::classify_for_slot`].
    content_settled: std::sync::atomic::AtomicBool,
}

type Slot = Arc<SlotInner>;
type Shard = RwLock<HashMap<CacheKey, Slot>>;

/// How the registry is sized and where it persists.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Number of independent cache shards (clamped to ≥ 1). More shards
    /// mean less read-lock contention across distinct datasets.
    pub shards: usize,
    /// LRU memory budget in bytes over every entry's
    /// [`Entry::stored_bytes`]; `None` disables eviction.
    pub cache_bytes: Option<u64>,
    /// Directory for the persistent warm tier (sample CSV + metadata
    /// per entry); `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// Byte budget for the persistent warm tier; `None` disables disk
    /// GC. When a persist pushes the directory's artifact total over
    /// this, whole key-stem groups (sample + meta + pairs together)
    /// are removed oldest-first until it fits — so keys that are never
    /// requested again cannot grow the cache dir without bound.
    pub cache_disk_bytes: Option<u64>,
    /// How long (milliseconds) a freshness check stays valid for the
    /// allocation-free [`Registry::peek`] fast path. Within this window
    /// of the last source stat, `peek` serves the resident entry
    /// without re-statting the file; `0` (the default here) disables
    /// `peek` entirely, preserving strict stat-on-every-hit
    /// invalidation. [`Registry::get_or_load`] always stats regardless.
    pub revalidate_ms: u64,
    /// Observer for cache lifecycle events (build, restore, evict,
    /// stale rebuild, unload, purge); `None` disables the hook. A
    /// plain `fn` pointer rather than a closure so the config keeps
    /// deriving `Clone`/`Debug`; the server installs an NDJSON logger
    /// here behind `--log-json`.
    pub event_sink: Option<fn(RegistryEvent)>,
    /// Size budget for the registry's write-ahead journal
    /// (`registry.wal` under [`RegistryConfig::cache_dir`]): past this
    /// many bytes the journal is folded into `registry.snapshot` and
    /// truncated, bounding replay cost. `0` disables the journal (and
    /// with it warm restart recovery); the journal is also off when no
    /// cache dir is configured. See [`crate::wal`].
    pub wal_max_bytes: u64,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            shards: 16,
            cache_bytes: None,
            cache_dir: None,
            cache_disk_bytes: None,
            revalidate_ms: 0,
            event_sink: None,
            wal_max_bytes: crate::wal::DEFAULT_WAL_MAX_BYTES,
        }
    }
}

/// A cache lifecycle event, delivered to
/// [`RegistryConfig::event_sink`] as it happens. `key` is the entry's
/// FNV-1a key hash ([`CacheKey::fnv64`]) — the same 16-hex-digit stem
/// the persistence tier uses, so log lines join against on-disk
/// artifacts and trace spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegistryEvent {
    /// A cold build scanned the source and produced a new entry.
    Built {
        /// FNV-1a hash of the entry's cache key.
        key: u64,
        /// The entry's resident footprint, bytes.
        bytes: u64,
    },
    /// A persisted artifact was restored from the cache dir (no scan).
    Restored {
        /// FNV-1a hash of the entry's cache key.
        key: u64,
        /// The restored entry's resident footprint, bytes.
        bytes: u64,
    },
    /// The LRU budget evicted a completed entry.
    Evicted {
        /// FNV-1a hash of the entry's cache key.
        key: u64,
        /// Bytes released by the eviction.
        bytes: u64,
    },
    /// A source-file change forced a rebuild of a resident entry.
    StaleRebuild {
        /// FNV-1a hash of the entry's cache key.
        key: u64,
    },
    /// A grown source was absorbed incrementally: only the appended
    /// suffix was scanned, the resident entry's reservoir resumed.
    AppendUpdate {
        /// FNV-1a hash of the entry's cache key.
        key: u64,
        /// Suffix bytes absorbed (new length minus old length).
        bytes: u64,
    },
    /// The warm-tier byte budget removed a persisted key's artifacts
    /// (oldest first).
    DiskEvicted {
        /// FNV-1a hash of the removed artifacts' cache key stem.
        key: u64,
        /// Artifact bytes removed.
        bytes: u64,
    },
    /// A non-separation witness sketch was built and admitted for a
    /// resident entry (persisted alongside the sample as the `.pairs`
    /// artifacts).
    SketchBuilt {
        /// FNV-1a hash of the entry's cache key.
        key: u64,
        /// The sketch's resident footprint, bytes.
        bytes: u64,
    },
    /// An explicit `unload` removed the entry (resident or persisted).
    Unloaded {
        /// FNV-1a hash of the entry's cache key.
        key: u64,
    },
    /// An `unload --all` purge completed.
    Purged {
        /// Resident entries dropped.
        entries: u64,
        /// Persisted artifact files removed.
        files: u64,
    },
}

/// A point-in-time view of the registry's lifecycle counters, consumed
/// by the `metrics` command.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Lookups answered from a resident entry (including waits on a
    /// concurrent build — the scan was still shared).
    pub hits: u64,
    /// Lookups that scanned the source (cold builds, stale rebuilds,
    /// materialisation upgrades, failed builds).
    pub misses: u64,
    /// Lookups answered by restoring a persisted sample from
    /// [`RegistryConfig::cache_dir`] — no source scan.
    pub disk_hits: u64,
    /// Entries evicted by the LRU budget.
    pub evictions: u64,
    /// Rebuilds forced by a source mtime/len change.
    pub stale_rebuilds: u64,
    /// Sample-only entries upgraded to a materialised dataset (each is
    /// also a miss — the upgrade re-scans the source).
    pub upgrades: u64,
    /// Grown sources absorbed incrementally (suffix-only scans; these
    /// are *not* stale rebuilds and not misses).
    pub append_updates: u64,
    /// Stale or appended entries the background sweeper refreshed
    /// ahead of traffic (entries that merely re-stamped fresh are not
    /// counted).
    pub sweep_refreshes: u64,
    /// Current resident total: every entry's [`Entry::stored_bytes`]
    /// plus its built non-separation sketch, if any.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub datasets: usize,
    /// Prior lives of this registry's cache dir: how many times a
    /// journal-armed registry has opened it before this one. `0` on a
    /// first boot or when the journal is disabled.
    pub restarts: u64,
    /// Journal records replayed at startup to recover this registry's
    /// counters and resident set.
    pub wal_replayed_events: u64,
}

/// The shared cache. All methods take `&self`; the registry is meant to
/// live in an `Arc` shared by every worker thread.
#[derive(Debug)]
pub struct Registry {
    shards: Vec<Shard>,
    config: RegistryConfig,
    /// Epoch for the per-slot `validated` stamps (monotonic, so stamps
    /// are immune to wall-clock jumps).
    born: Instant,
    clock: AtomicU64,
    resident_bytes: AtomicU64,
    /// The cumulative lifecycle counters, in an `Arc` because the
    /// journal's flusher thread checkpoints them independently of the
    /// registry's lifetime (see [`crate::wal`]).
    counters: Arc<crate::wal::LifecycleCounters>,
    /// The write-ahead journal, when persistence is configured and
    /// [`RegistryConfig::wal_max_bytes`] is non-zero.
    wal: Option<Arc<crate::wal::Wal>>,
    /// Prior lives recovered from the journal (see
    /// [`RegistrySnapshot::restarts`]).
    restarts: u64,
    /// Journal records replayed at startup.
    wal_replayed_events: u64,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_config(RegistryConfig::default())
    }
}

impl Drop for Registry {
    /// A dropped registry is a **clean** shutdown: the journal writes
    /// its final counter checkpoint and the clean-shutdown record,
    /// syncs, and joins its flusher thread. A killed process never
    /// runs this — the record's absence is exactly the crash evidence
    /// the next boot's recovery keys off.
    fn drop(&mut self) {
        if let Some(wal) = &self.wal {
            wal.close(&self.counters);
        }
    }
}

impl Registry {
    /// Creates an empty registry with the default configuration
    /// (16 shards, no budget, no persistence).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry with an explicit lifecycle
    /// configuration.
    ///
    /// When persistence is configured this is also **recovery**: the
    /// write-ahead journal under the cache dir is replayed first
    /// (see [`crate::wal`]) — cumulative counters resume, the
    /// journal's verdict on the previous life's shutdown decides how
    /// aggressively orphaned `*.tmp` files are swept (crash evidence
    /// ⇒ immediately; clean or unknown ⇒ only past the age gate), and
    /// the previous resident set is eagerly re-admitted from the warm
    /// tier in preserved LRU order, so replayed keys serve their first
    /// post-restart request without a build miss.
    pub fn with_config(config: RegistryConfig) -> Self {
        // The journal's replay verdict gates the tmp sweep, so open it
        // before touching anything else in the dir.
        let wal = match (&config.cache_dir, config.wal_max_bytes) {
            (Some(dir), max) if max > 0 => crate::wal::Wal::open(dir, max).ok().map(Arc::new),
            _ => None,
        };
        let crashed = wal
            .as_ref()
            .map(|w| w.recovery().had_journal && !w.recovery().clean_shutdown)
            .unwrap_or(false);
        if let Some(dir) = &config.cache_dir {
            sweep_tmp_files(dir, crashed);
        }
        let counters = Arc::new(crate::wal::LifecycleCounters::default());
        let (restarts, wal_replayed_events, resident) = match &wal {
            Some(w) => {
                let r = w.recovery();
                counters.seed(&r.counters);
                (r.restarts, r.replayed_events, r.resident.clone())
            }
            None => (0, 0, Vec::new()),
        };
        let n = config.shards.max(1);
        let registry = Registry {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            config,
            born: Instant::now(),
            clock: AtomicU64::new(0),
            resident_bytes: AtomicU64::new(0),
            counters: Arc::clone(&counters),
            wal: wal.clone(),
            restarts,
            wal_replayed_events,
        };
        // Arm before re-admitting so the restores of this life are
        // journaled like any other.
        if let Some(w) = &wal {
            w.arm(counters);
        }
        registry.readmit(&resident);
        registry
    }

    /// Eagerly re-admits the previous life's resident set from the
    /// warm tier, least-recently-touched first so the LRU order
    /// survives the restart. Restore-only: a key whose artifacts are
    /// gone, stale, or mismatched is skipped (the next request for it
    /// rebuilds normally) — recovery must never pay cold source scans
    /// for state it merely remembers. Each successful re-admission is
    /// a disk hit and is journaled like any other restore.
    fn readmit(&self, resident: &[u64]) {
        if resident.is_empty() {
            return;
        }
        let Some(dir) = self.config.cache_dir.clone() else {
            return;
        };
        for &stem in resident {
            let Some(meta) = read_meta(&dir.join(format!("{stem:016x}.meta.json"))) else {
                continue;
            };
            // The meta carries the key's full identity; trusting it is
            // gated on the stem round-tripping (a collision or foreign
            // artifact fails here).
            let key = CacheKey {
                path: meta.header.path.clone(),
                eps_bits: meta.header.eps_bits,
                seed: meta.header.seed,
            };
            if key.fnv64() != stem {
                continue;
            }
            let ds = DatasetRef {
                path: key.path.clone(),
                eps: f64::from_bits(key.eps_bits),
                seed: key.seed,
            };
            let Some(entry) = self.try_restore(&key, &ds) else {
                continue;
            };
            let entry = Arc::new(entry);
            let slot: Slot = Arc::new(SlotInner::default());
            self.touch(&slot);
            let _ = slot.cell.set(Ok(Arc::clone(&entry)));
            self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.resident_bytes
                .fetch_add(entry.stored_bytes as u64, Ordering::Relaxed);
            // try_restore proved the current source stamp matches the
            // persisted one, so the peek window opens immediately.
            self.stamp_validated(&slot);
            self.emit(RegistryEvent::Restored {
                key: stem,
                bytes: entry.stored_bytes as u64,
            });
            self.shard(&key)
                .write()
                .expect("shard lock")
                .insert(key.clone(), slot);
            self.enforce_budget(&key);
        }
    }

    fn shard(&self, key: &CacheKey) -> &Shard {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Delivers a lifecycle event to the write-ahead journal and the
    /// configured sink. No event is emitted on the served-hit fast
    /// path, so neither observer can cost the zero-alloc window
    /// anything.
    fn emit(&self, event: RegistryEvent) {
        if let Some(wal) = &self.wal {
            wal.record(event);
        }
        if let Some(sink) = self.config.event_sink {
            sink(event);
        }
    }

    fn touch(&self, slot: &Slot) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        slot.last_used.store(now, Ordering::Relaxed);
    }

    /// Milliseconds since the registry was created, offset by one so a
    /// zero `validated` stamp always means "never".
    fn stamp_now(&self) -> u64 {
        (self.born.elapsed().as_millis() as u64).saturating_add(1)
    }

    /// Records that `slot`'s entry just passed (or just finished) a
    /// source-freshness check, opening the [`Registry::peek`] window.
    fn stamp_validated(&self, slot: &Slot) {
        slot.validated.store(self.stamp_now(), Ordering::Relaxed);
    }

    /// Classifies `slot`'s entry against its source, applying the
    /// racy-stat discipline: a stamp captured safely after the file's
    /// mtime is proven fresh by a matching stat alone, so the content
    /// re-read runs only while the stamp is racy
    /// ([`SourceStamp::is_racy`]) and the slot has not yet settled.
    /// Once a fingerprint check passes after the race window closes,
    /// the slot records that the stat is trustworthy and warm hits
    /// stop reading the file entirely.
    fn classify_for_slot(&self, slot: &Slot, entry: &Entry, path: &str) -> Freshness {
        let verify = entry.source.is_some_and(|s| s.is_racy())
            && !slot.content_settled.load(Ordering::Relaxed);
        let (verdict, verified) = classify(entry.source, path, verify);
        if verified
            && verdict == Freshness::Fresh
            && entry
                .source
                .is_some_and(|s| unix_ms_now() >= s.race_horizon_ms())
        {
            slot.content_settled.store(true, Ordering::Relaxed);
        }
        verdict
    }

    /// The allocation-free read path: returns the resident entry for
    /// `key` iff it is built, healthy, and was freshness-checked within
    /// the last [`RegistryConfig::revalidate_ms`] milliseconds. Counted
    /// as a cache hit. Returns `None` — never builds, restores, or
    /// stats — in every other case; callers fall back to
    /// [`Registry::get_or_load`], whose stat re-opens the window.
    ///
    /// The configured [`RegistryConfig::revalidate_ms`] window; `0`
    /// means [`Registry::peek`] (and the request fast path built on
    /// it) is disabled.
    pub fn revalidate_window_ms(&self) -> u64 {
        self.config.revalidate_ms
    }

    /// With `revalidate_ms == 0` (the default) this always returns
    /// `None`: strict stat-on-every-hit invalidation.
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<Entry>> {
        let window = self.config.revalidate_ms;
        if window == 0 {
            return None;
        }
        let slot = self
            .shard(key)
            .read()
            .expect("shard lock")
            .get(key)
            .map(Arc::clone)?;
        let stamp = slot.validated.load(Ordering::Relaxed);
        if stamp == 0 || self.stamp_now().saturating_sub(stamp) >= window {
            return None;
        }
        let entry = match slot.cell.get() {
            Some(Ok(entry)) => Arc::clone(entry),
            _ => return None,
        };
        self.touch(&slot);
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
        Some(entry)
    }

    /// Returns the cached entry for `ds`, building it on first use.
    ///
    /// The boolean is `true` iff the lookup was answered without paying
    /// a source scan *by this caller*: a resident entry, or a wait on a
    /// concurrent build. It is `false` for cold builds, disk restores,
    /// and stale rebuilds. Failed builds are evicted so a later request
    /// can retry (e.g. after the file appears).
    pub fn get_or_load(
        &self,
        ds: &DatasetRef,
        mode: LoadMode,
    ) -> (Result<Arc<Entry>, String>, bool) {
        let key = CacheKey::of(ds);
        // The disk tier holds samples only, so it can satisfy a
        // stream-mode lookup but not an explicit memory-mode load —
        // `load` with `"mode":"memory"` exists to pre-materialise, and
        // silently downgrading it to a sample would push the full scan
        // onto the first `stats`/`mask` instead.
        let allow_restore = matches!(mode, LoadMode::Stream);
        // Fast path: shared read lock, pointer clone.
        let resident = self
            .shard(&key)
            .read()
            .expect("shard lock")
            .get(&key)
            .map(Arc::clone);
        if let Some(slot) = resident {
            self.touch(&slot);
            match slot.cell.get() {
                Some(done) => {
                    if let Ok(entry) = done {
                        match self.classify_for_slot(&slot, entry, &key.path) {
                            Freshness::Fresh => {
                                // The stamp just passed: re-open the
                                // peek window.
                                self.stamp_validated(&slot);
                            }
                            Freshness::Appended { new } if entry.append_capable() => {
                                // The entry is reused (suffix-only
                                // scan): hit semantics — counted
                                // inside refresh_appended, and only
                                // when the absorb does not fall back
                                // to a full scan (a miss).
                                let (result, _) =
                                    self.refresh_appended(&key, ds, &slot, entry, new, true);
                                return (result, true);
                            }
                            _ => return self.rebuild(&key, ds, mode, &slot, allow_restore),
                        }
                    }
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    (done.clone(), true)
                }
                None => {
                    // A build is in flight; wait on it. The scan is
                    // shared, so this still counts as a hit.
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    let result = self.run_build(&key, ds, mode, &slot, allow_restore);
                    (result, true)
                }
            }
        } else {
            // Miss: insert a fresh slot (or adopt one a racer inserted
            // between our read and write locks) and build into it.
            let (slot, we_inserted) = {
                let mut map = self.shard(&key).write().expect("shard lock");
                match map.get(&key) {
                    Some(existing) => (Arc::clone(existing), false),
                    None => {
                        let fresh: Slot = Arc::new(SlotInner::default());
                        map.insert(key.clone(), Arc::clone(&fresh));
                        (fresh, true)
                    }
                }
            };
            self.touch(&slot);
            if !we_inserted {
                // Same as the in-flight case above: someone else owns
                // the build; waiting on it shares the scan.
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                return (self.run_build(&key, ds, mode, &slot, allow_restore), true);
            }
            (self.run_build(&key, ds, mode, &slot, allow_restore), false)
        }
    }

    /// Like [`Registry::get_or_load`] with [`LoadMode::Memory`], but
    /// additionally upgrades a sample-only entry (stream-mode or
    /// disk-restored) to a fully materialised one — `stats` and `mask`
    /// need the whole dataset. Concurrent upgraders collapse onto one
    /// re-scan (the same way cold builds do). Only the upgrader that
    /// swaps the slot is reclassified from hit to miss.
    pub fn get_or_load_materialised(&self, ds: &DatasetRef) -> (Result<Arc<Entry>, String>, bool) {
        let (mut result, mut hit) = self.get_or_load(ds, LoadMode::Memory);
        // Loop: adopting a racer's pending build can hand back a
        // *stream-mode* result (sample only) — e.g. a concurrent stale
        // rebuild in flight. Each adoption waits on a finished build,
        // so re-checking until the entry is materialised (or until we
        // swap and scan memory-mode ourselves, which always
        // materialises) converges after the race drains.
        loop {
            match result {
                Ok(entry) if entry.dataset.is_none() => {
                    let key = CacheKey::of(ds);
                    let (slot, we_swapped) = self.swap_slot_if(&key, |cur| {
                        // Swap only if the resident slot still holds
                        // the unusable sample-only entry (or a stale
                        // error); a pending or finished upgrade slot
                        // is reused as-is.
                        cur.cell
                            .get()
                            .is_some_and(|r| !r.as_ref().is_ok_and(|e| e.dataset.is_some()))
                    });
                    if we_swapped {
                        self.counters.upgrades.fetch_add(1, Ordering::Relaxed);
                    }
                    if we_swapped && hit {
                        // Reclassify: the cached entry was unusable
                        // and we are the one paying the re-scan.
                        self.counters.hits.fetch_sub(1, Ordering::Relaxed);
                    }
                    // An upgrade must materialise, which the disk tier
                    // cannot do — force a source scan.
                    result = self.run_build(&key, ds, LoadMode::Memory, &slot, false);
                    hit = hit && !we_swapped;
                    if we_swapped {
                        // Our own memory-mode build: materialised or a
                        // real error either way.
                        return (result, hit);
                    }
                }
                other => return (other, hit),
            }
        }
    }

    /// Returns the entry's Theorem 2 [`NonSeparationSketch`], building
    /// it on first use (with the protocol-fixed
    /// [`crate::proto::sketch_params`] and the entry's
    /// seed).
    ///
    /// Concurrent callers collapse onto one build via the entry's
    /// `OnceLock`, exactly like cold sample builds. The build source
    /// is, in order of preference: the persisted pair sample from the
    /// disk tier (`cache_disk_hits`), the resident materialised
    /// dataset (no I/O at all), or a fresh one-pass scan of the source
    /// CSV (`cache_misses`). All three produce the *same* sketch —
    /// the streaming builder is the single definition, and the
    /// materialised dataset preserves source row order — so answers
    /// never depend on how the entry happens to be resident.
    ///
    /// A failed build is cached on the entry (the slot is written
    /// once); the error clears when the entry itself is rebuilt
    /// (stale source) or dropped (`unload`).
    pub fn sketch_for(
        &self,
        ds: &DatasetRef,
        entry: &Arc<Entry>,
    ) -> Result<Arc<NonSeparationSketch>, String> {
        let key = CacheKey::of(ds);
        let result = entry
            .sketch_cell
            .get_or_init(|| {
                let params = sketch_params();
                if entry.dataset.is_none() {
                    if let Some(sk) = self.try_restore_sketch(&key, entry, params) {
                        self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(self.admit_sketch(entry, sk, &key, false, params));
                    }
                }
                let built = match &entry.dataset {
                    Some(dataset) => {
                        let mut src = DatasetTupleSource::new(dataset);
                        sketch_from_stream(&mut src, params, ds.seed)
                            .map_err(|e: DatasetError| e.to_string())?
                    }
                    None => {
                        self.counters.misses.fetch_add(1, Ordering::Relaxed);
                        let mut src = CsvTupleSource::open(&key.path, &CsvOptions::default())
                            .map_err(|e| format!("reading {}: {e}", key.path))?;
                        // Driven through a PairIngest (rather than
                        // `sketch_from_stream`, which it re-implements
                        // verbatim) so the pair-reservoir state can be
                        // kept on the entry for append absorption.
                        let slots = params.pair_sample_size(src.n_attrs()).max(1);
                        let mut ingest = PairIngest::new(src.attr_names(), slots, ds.seed);
                        loop {
                            match src.next_tuple() {
                                Ok(Some(tuple)) => ingest.push(&tuple),
                                Ok(None) => break,
                                Err(e) => return Err(format!("streaming {}: {e}", key.path)),
                            }
                        }
                        let sk = ingest
                            .to_sketch(params)
                            .map_err(|e| format!("streaming {}: {e}", key.path))?;
                        // The sample and the sketch must describe the
                        // same data: if the source changed between the
                        // entry build and this scan, fail now — the
                        // stamp-on-hit check will rebuild the entry
                        // (and with it this cell) on the next lookup.
                        if SourceStamp::capture(&key.path) != entry.source {
                            return Err(format!(
                                "{} changed while the sketch was building; retry",
                                key.path
                            ));
                        }
                        let _ = entry.pair_ingest.set(ingest);
                        sk
                    }
                };
                Ok(self.admit_sketch(entry, built, &key, true, params))
            })
            .clone();
        self.enforce_budget(&key);
        // If the entry lost its slot while the sketch was building
        // (eviction, unload, stale swap), reclaim the bytes the build
        // charged; the swap-to-zero protocol guarantees exactly one of
        // this branch and `forget_bytes` wins.
        let still_resident = self
            .shard(&key)
            .read()
            .expect("shard lock")
            .get(&key)
            .is_some_and(|slot| {
                slot.cell
                    .get()
                    .is_some_and(|r| r.as_ref().is_ok_and(|e| Arc::ptr_eq(e, entry)))
            });
        if !still_resident {
            let orphaned = entry.sketch_bytes.swap(0, Ordering::SeqCst);
            if orphaned > 0 {
                self.resident_bytes
                    .fetch_sub(orphaned as u64, Ordering::SeqCst);
            }
        }
        result
    }

    /// Books a freshly built (or restored) sketch into the byte
    /// accounting, persists it if configured, and wraps it for the
    /// cell. The resident total is bumped *before* the per-entry byte
    /// count becomes visible, so a concurrent `forget_bytes` can never
    /// subtract bytes that were not yet added. The charge includes the
    /// paused pair-sample tuples retained alongside the sketch (set on
    /// `entry.pair_ingest` before this call), so LRU eviction sees the
    /// full cost of keeping the sketch append-resumable.
    fn admit_sketch(
        &self,
        entry: &Entry,
        sketch: NonSeparationSketch,
        key: &CacheKey,
        persist: bool,
        params: SketchParams,
    ) -> Arc<NonSeparationSketch> {
        let sketch = Arc::new(sketch);
        let bytes = sketch.stored_bytes()
            + entry
                .pair_ingest
                .get()
                .map_or(0, PairIngest::retained_bytes);
        self.resident_bytes
            .fetch_add(bytes as u64, Ordering::SeqCst);
        entry.sketch_bytes.store(bytes, Ordering::SeqCst);
        self.emit(RegistryEvent::SketchBuilt {
            key: key.fnv64(),
            bytes: bytes as u64,
        });
        if persist {
            if let Some(dir) = &self.config.cache_dir {
                // Best-effort, like sample persistence.
                let _ = persist_sketch(dir, key, entry, &sketch, params);
                self.enforce_disk_budget(key);
            }
        }
        sketch
    }

    /// Drops the resident entry and its persisted files, if any.
    /// Returns `true` iff something was removed. An entry mid-build is
    /// left alone (it will be admitted normally; unload it again once
    /// it is resident).
    pub fn unload(&self, ds: &DatasetRef) -> bool {
        let key = CacheKey::of(ds);
        let removed_resident = {
            let mut map = self.shard(&key).write().expect("shard lock");
            match map.get(&key) {
                Some(slot) if slot.cell.get().is_some() => {
                    let slot = map.remove(&key).expect("slot present");
                    self.forget_bytes(&slot);
                    true
                }
                _ => false,
            }
        };
        let mut removed_disk = false;
        if let Some(dir) = &self.config.cache_dir {
            for path in [
                meta_path(dir, &key),
                sample_path(dir, &key),
                pairs_meta_path(dir, &key),
                pairs_path(dir, &key),
            ] {
                removed_disk |= std::fs::remove_file(path).is_ok();
            }
        }
        if removed_resident || removed_disk {
            self.emit(RegistryEvent::Unloaded { key: key.fnv64() });
        }
        removed_resident || removed_disk
    }

    /// Purges the whole cache (`unload --all`): drops every *completed*
    /// resident entry — a slot mid-build is left alone, matching
    /// [`Registry::unload`] — and removes every persisted cache
    /// artifact in the cache dir, whether or not a resident entry
    /// references it (this is the GC path for keys that will never be
    /// requested again). Returns dropped entries + removed files.
    pub fn unload_all(&self) -> u64 {
        let mut entries = 0u64;
        for shard in &self.shards {
            let mut map = shard.write().expect("shard lock");
            let completed: Vec<CacheKey> = map
                .iter()
                .filter(|(_, slot)| slot.cell.get().is_some())
                .map(|(key, _)| key.clone())
                .collect();
            for key in completed {
                let slot = map.remove(&key).expect("slot present");
                self.forget_bytes(&slot);
                entries += 1;
            }
        }
        let mut files = 0u64;
        if let Some(dir) = &self.config.cache_dir {
            if let Ok(listing) = std::fs::read_dir(dir) {
                for dirent in listing.flatten() {
                    let name = dirent.file_name();
                    let is_artifact = name.to_str().is_some_and(is_cache_artifact);
                    if is_artifact && std::fs::remove_file(dirent.path()).is_ok() {
                        files += 1;
                    }
                }
            }
        }
        self.emit(RegistryEvent::Purged { entries, files });
        entries + files
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock").len())
            .sum()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from cache so far.
    pub fn hits(&self) -> u64 {
        self.counters.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to scan the source so far.
    pub fn misses(&self) -> u64 {
        self.counters.misses.load(Ordering::Relaxed)
    }

    /// Lookups answered by restoring a persisted sample so far.
    pub fn disk_hits(&self) -> u64 {
        self.counters.disk_hits.load(Ordering::Relaxed)
    }

    /// Grown sources absorbed incrementally so far.
    pub fn append_updates(&self) -> u64 {
        self.counters.append_updates.load(Ordering::Relaxed)
    }

    /// Entries the background sweeper refreshed so far.
    pub fn sweep_refreshes(&self) -> u64 {
        self.counters.sweep_refreshes.load(Ordering::Relaxed)
    }

    /// All lifecycle counters at once, for the `metrics` command.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            stale_rebuilds: self.counters.stale_rebuilds.load(Ordering::Relaxed),
            upgrades: self.counters.upgrades.load(Ordering::Relaxed),
            append_updates: self.counters.append_updates.load(Ordering::Relaxed),
            sweep_refreshes: self.counters.sweep_refreshes.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            datasets: self.len(),
            restarts: self.restarts,
            wal_replayed_events: self.wal_replayed_events,
        }
    }

    /// Prior lives of this registry's cache dir, per the journal. `0`
    /// on a first boot or with the journal disabled.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Journal records replayed at startup (see [`crate::wal`]).
    pub fn wal_replayed_events(&self) -> u64 {
        self.wal_replayed_events
    }

    /// Test hook: tears the journal down the way a kill -9 would — no
    /// shutdown record, no final checkpoint — so unit tests can
    /// simulate a crash without killing the test process.
    #[cfg(test)]
    fn crash_for_test(&self) {
        if let Some(wal) = &self.wal {
            wal.abort_for_test();
        }
    }

    /// One background-revalidation pass: walks every resident completed
    /// entry, re-stamps its source, and acts on the verdict *ahead of
    /// traffic* — fresh entries get their [`Registry::peek`] window
    /// re-opened (so the zero-allocation fast path keeps serving
    /// between sweeps without ever falling back to a stat), appended
    /// ones are absorbed, stale ones rebuilt. Returns the number of
    /// entries this pass actually refreshed (absorbed or rebuilt).
    ///
    /// Safe to race with foreground lookups: refresh goes through the
    /// same swap-then-build-once discipline as the request path, so a
    /// sweeper and a foreground caller landing on the same changed
    /// entry share one scan and count one miss.
    pub fn sweep(&self) -> u64 {
        let mut refreshed = 0u64;
        for shard in &self.shards {
            let slots: Vec<(CacheKey, Slot)> = {
                let map = shard.read().expect("shard lock");
                map.iter()
                    .map(|(key, slot)| (key.clone(), Arc::clone(slot)))
                    .collect()
            };
            for (key, slot) in slots {
                let Some(Ok(entry)) = slot.cell.get() else {
                    continue; // mid-build or failed: the request path owns those
                };
                let entry = Arc::clone(entry);
                let ds = DatasetRef {
                    path: key.path.clone(),
                    eps: f64::from_bits(key.eps_bits),
                    seed: key.seed,
                };
                match self.classify_for_slot(&slot, &entry, &key.path) {
                    Freshness::Fresh => self.stamp_validated(&slot),
                    Freshness::Appended { new } if entry.append_capable() => {
                        // The sweeper is not a lookup: no hit counted.
                        let (result, swapped) =
                            self.refresh_appended(&key, &ds, &slot, &entry, new, false);
                        if result.is_ok() && swapped {
                            refreshed += 1;
                        }
                    }
                    _ => {
                        let mode = if entry.dataset.is_some() {
                            LoadMode::Memory
                        } else {
                            LoadMode::Stream
                        };
                        let allow_restore = matches!(mode, LoadMode::Stream);
                        let (result, adopted) =
                            self.refresh_stale(&key, &ds, mode, &slot, allow_restore, false);
                        if result.is_ok() && !adopted {
                            refreshed += 1;
                        }
                    }
                }
            }
        }
        if refreshed > 0 {
            self.counters
                .sweep_refreshes
                .fetch_add(refreshed, Ordering::Relaxed);
        }
        refreshed
    }

    // ------------------------------------------------------ internals

    /// True iff the entry's recorded stamp differs from the prefetched
    /// one — the lock-safe staleness predicate (no filesystem I/O, so
    /// it may run under a shard write lock). A source that cannot be
    /// stamped now (deleted, permissions) is *not* stale: the sample
    /// is all we have, and the paper's point is that it keeps
    /// answering queries.
    fn stamp_mismatch(entry: &Entry, now: Option<SourceStamp>) -> bool {
        matches!((entry.source, now), (Some(then), Some(n)) if then != n)
    }

    /// Replaces the slot for `key` with a fresh one and builds into it
    /// (the stale path, from the request path). See
    /// [`Registry::refresh_stale`].
    fn rebuild(
        &self,
        key: &CacheKey,
        ds: &DatasetRef,
        mode: LoadMode,
        observed: &Slot,
        allow_restore: bool,
    ) -> (Result<Arc<Entry>, String>, bool) {
        self.refresh_stale(key, ds, mode, observed, allow_restore, true)
    }

    /// The stale path: swaps in a fresh slot (unless a racer already
    /// refreshed the entry) and builds into it. `allow_restore` is
    /// forwarded so a stale rebuild may still use the disk tier — the
    /// restore itself verifies the source stamp, so stale persisted
    /// files never match. `count_adopt_hit` is true on the request
    /// path (adopting a racer's rebuild shares its scan — hit
    /// semantics) and false from the sweeper, which is not a lookup.
    /// The returned boolean follows the [`Registry::get_or_load`]
    /// contract: `true` iff this caller adopted a racer's rebuild
    /// instead of paying its own.
    fn refresh_stale(
        &self,
        key: &CacheKey,
        ds: &DatasetRef,
        mode: LoadMode,
        observed: &Slot,
        allow_restore: bool,
        count_adopt_hit: bool,
    ) -> (Result<Arc<Entry>, String>, bool) {
        // Stamp once, out here: the swap predicate runs under the shard
        // write lock, and filesystem I/O there would stall every
        // lookup on the shard behind a slow disk.
        let now = SourceStamp::capture(&key.path);
        let (slot, we_swapped) = self.swap_slot_if(key, |cur| {
            // Swap the slot we saw go stale. If a racer already swapped
            // it, swap again only if *their* result is stale too —
            // adopting a fresh rebuild (or a build in flight) as-is.
            Arc::ptr_eq(cur, observed)
                || cur.cell.get().is_some_and(|r| match r {
                    Ok(entry) => Self::stamp_mismatch(entry, now),
                    Err(_) => true,
                })
        });
        if we_swapped {
            // Exactly one observer per rebuild reaches here, so the
            // counter matches actual rebuilds even under racing hits.
            self.counters.stale_rebuilds.fetch_add(1, Ordering::Relaxed);
            self.emit(RegistryEvent::StaleRebuild { key: key.fnv64() });
        } else if count_adopt_hit {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
        }
        (
            self.run_build(key, ds, mode, &slot, allow_restore),
            !we_swapped,
        )
    }

    /// The append path: swaps in a fresh slot (unless a racer already
    /// refreshed the entry) and fills it by *absorbing* the appended
    /// suffix into `old`'s resumable ingest state — bit-identical to a
    /// cold rebuild over the whole file, at suffix cost. Falls back to
    /// a full scan (a miss) if the absorb fails for any reason.
    /// `count_hit` is true on the request path, where the lookup is
    /// counted as a hit — unless *this* caller's absorb fell back to
    /// the full scan, which is already counted as a miss (so `hits +
    /// misses` always equals lookups); the sweeper passes false, it is
    /// not a lookup. The returned boolean is `true` iff this caller
    /// performed the swap.
    fn refresh_appended(
        &self,
        key: &CacheKey,
        ds: &DatasetRef,
        observed: &Slot,
        old: &Arc<Entry>,
        new: SourceStamp,
        count_hit: bool,
    ) -> (Result<Arc<Entry>, String>, bool) {
        let (slot, we_swapped) = self.swap_slot_if(key, |cur| {
            // Swap the slot we saw as appended. If a racer already
            // swapped it, swap again only if their result still holds
            // the old stamp (nobody actually refreshed) — otherwise
            // adopt their fresh slot (or wait on their build in
            // flight) as-is.
            Arc::ptr_eq(cur, observed)
                || cur.cell.get().is_some_and(|r| match r {
                    Ok(entry) => entry.source == old.source,
                    Err(_) => true,
                })
        });
        let fell_back = std::cell::Cell::new(false);
        let result = slot
            .cell
            .get_or_init(|| match self.absorb_append(key, ds, old, new) {
                Ok(entry) => {
                    self.counters.append_updates.fetch_add(1, Ordering::Relaxed);
                    self.resident_bytes
                        .fetch_add(entry.stored_bytes as u64, Ordering::Relaxed);
                    self.emit(RegistryEvent::AppendUpdate {
                        key: key.fnv64(),
                        bytes: new.len - old.source.map_or(0, |s| s.len),
                    });
                    if let Some(dir) = &self.config.cache_dir {
                        // Re-persist so a restart resumes from the
                        // absorbed state, not the pre-append sample.
                        let _ = persist_entry(dir, key, &entry);
                        self.enforce_disk_budget(key);
                    }
                    Ok(entry)
                }
                Err(_) => {
                    // Absorb failed (unreadable suffix, inconsistent
                    // state): pay the full scan instead. That scan is
                    // the miss; the caller must not also count a hit.
                    fell_back.set(true);
                    self.counters.misses.fetch_add(1, Ordering::Relaxed);
                    self.scan_build(key, ds, LoadMode::Stream)
                }
            })
            .clone();
        // A caller that adopted a racer's slot (closure not run) shares
        // that work — hit semantics, like waiting on an in-flight
        // build. Only the caller whose own absorb fell back to a scan
        // skips the hit: its lookup is the miss counted above.
        if count_hit && !fell_back.get() {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
        }
        self.finish_build(key, &slot, &result);
        (result, we_swapped)
    }

    /// Feeds the appended suffix (`old.source.len ..= new.len` bytes of
    /// the source) through the entry's paused reservoir, column
    /// sketches, and — if the sketch was built in-process — pair
    /// reservoirs, producing a new entry equal to a cold rebuild over
    /// the grown file.
    fn absorb_append(
        &self,
        key: &CacheKey,
        ds: &DatasetRef,
        old: &Arc<Entry>,
        new: SourceStamp,
    ) -> Result<Arc<Entry>, String> {
        let old_stamp = old.source.ok_or("entry has no source stamp")?;
        let mut ingest = old
            .ingest
            .clone()
            .ok_or("entry has no resumable ingest state")?;
        let mut cols = old.cols.clone();
        let mut pair = old.pair_ingest.get().cloned();
        let mut src = CsvTupleSource::open_suffix(
            &key.path,
            old_stamp.len,
            new.len - old_stamp.len,
            ingest.names().to_vec(),
            &CsvOptions::default(),
        )
        .map_err(|e| format!("reading {}: {e}", key.path))?;
        loop {
            let tuple = match src.next_tuple() {
                Ok(Some(tuple)) => tuple,
                Ok(None) => break,
                Err(e) => return Err(format!("streaming {}: {e}", key.path)),
            };
            if tuple.len() != old.attrs {
                return Err(format!(
                    "appended row width {} != schema width {}",
                    tuple.len(),
                    old.attrs
                ));
            }
            for (sk, v) in cols.iter_mut().zip(&tuple) {
                sk.observe(v);
            }
            if let Some(p) = &mut pair {
                p.push(&tuple);
            }
            ingest.push(tuple);
        }
        let params = FilterParams::new(ds.eps);
        let filter = ingest
            .to_filter(params)
            .map_err(|e| format!("rebuilding sample for {}: {e}", key.path))?;
        let rows = ingest.rows();
        let entry = Entry::new(filter, None, cols, rows, old.attrs, Some(new), Some(ingest));
        let entry = Arc::new(entry);
        if let Some(pair) = pair {
            // The old entry had an in-process sketch: advance it over
            // the suffix too, so `sketch` stays warm across appends.
            let sketch_params = sketch_params();
            if let Ok(sk) = pair.to_sketch(sketch_params) {
                // Pair state goes on the entry *before* admission so
                // the sketch byte charge covers its retained tuples.
                let _ = entry.pair_ingest.set(pair);
                let sk = self.admit_sketch(&entry, sk, key, true, sketch_params);
                let _ = entry.sketch_cell.set(Ok(sk));
            }
        }
        Ok(entry)
    }

    /// Swaps in a fresh slot for `key` when `should_swap` says the
    /// current one is unusable; otherwise adopts the current slot.
    /// Subtracts the replaced entry's bytes. Returns the slot to build
    /// into (or wait on) and whether this caller performed the swap.
    fn swap_slot_if(&self, key: &CacheKey, should_swap: impl Fn(&Slot) -> bool) -> (Slot, bool) {
        let mut map = self.shard(key).write().expect("shard lock");
        let needs_swap = map.get(key).is_none_or(should_swap);
        if needs_swap {
            let fresh: Slot = Arc::new(SlotInner::default());
            self.touch(&fresh);
            if let Some(old) = map.insert(key.clone(), Arc::clone(&fresh)) {
                self.forget_bytes(&old);
            }
            (fresh, true)
        } else {
            let cur = Arc::clone(map.get(key).expect("slot present"));
            drop(map);
            self.touch(&cur);
            (cur, false)
        }
    }

    /// Subtracts a removed slot's resident bytes from the total —
    /// including the entry's built sketch, whose byte count is swapped
    /// to zero so a concurrent [`Registry::sketch_for`] reclaim can
    /// never subtract it a second time.
    fn forget_bytes(&self, slot: &Slot) {
        if let Some(Ok(entry)) = slot.cell.get() {
            let sketch = entry.sketch_bytes.swap(0, Ordering::SeqCst);
            self.resident_bytes
                .fetch_sub((entry.stored_bytes + sketch) as u64, Ordering::SeqCst);
        }
    }

    /// Runs (or waits on) the slot's one-time build, then enforces the
    /// LRU budget. Exactly one caller executes the closure; the rest
    /// block inside `get_or_init` until the winner finishes. The
    /// closure classifies the lookup: restore → disk hit, scan → miss.
    fn run_build(
        &self,
        key: &CacheKey,
        ds: &DatasetRef,
        mode: LoadMode,
        slot: &Slot,
        allow_restore: bool,
    ) -> Result<Arc<Entry>, String> {
        let result = slot
            .cell
            .get_or_init(|| {
                if allow_restore {
                    if let Some(entry) = self.try_restore(key, ds) {
                        self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                        self.resident_bytes
                            .fetch_add(entry.stored_bytes as u64, Ordering::Relaxed);
                        self.emit(RegistryEvent::Restored {
                            key: key.fnv64(),
                            bytes: entry.stored_bytes as u64,
                        });
                        return Ok(Arc::new(entry));
                    }
                }
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                self.scan_build(key, ds, mode)
            })
            .clone();
        self.finish_build(key, slot, &result);
        result
    }

    /// A full source scan (a miss): builds the entry, books its bytes,
    /// persists it, and enforces the warm-tier budget. Runs only from
    /// inside a slot's one-time build closure.
    fn scan_build(
        &self,
        key: &CacheKey,
        ds: &DatasetRef,
        mode: LoadMode,
    ) -> Result<Arc<Entry>, String> {
        build_entry(ds, &key.path, mode).map(|entry| {
            self.resident_bytes
                .fetch_add(entry.stored_bytes as u64, Ordering::Relaxed);
            self.emit(RegistryEvent::Built {
                key: key.fnv64(),
                bytes: entry.stored_bytes as u64,
            });
            if let Some(dir) = &self.config.cache_dir {
                // Best-effort: a failed persist only costs the
                // next restart a re-scan.
                let _ = persist_entry(dir, key, &entry);
                self.enforce_disk_budget(key);
            }
            Arc::new(entry)
        })
    }

    /// The common tail of every slot fill: evict a failed slot so a
    /// later request retries, or stamp a successful one (the build
    /// captured a fresh source stamp, so the peek window opens from
    /// here) and enforce the LRU budget.
    fn finish_build(&self, key: &CacheKey, slot: &Slot, result: &Result<Arc<Entry>, String>) {
        if result.is_err() {
            let mut map = self.shard(key).write().expect("shard lock");
            if map.get(key).is_some_and(|cur| Arc::ptr_eq(cur, slot)) {
                map.remove(key);
            }
        } else {
            self.stamp_validated(slot);
            self.enforce_budget(key);
        }
    }

    /// Evicts least-recently-used completed entries until the resident
    /// total fits the budget. `protect` (the entry being returned to
    /// the caller) is never evicted. Persisted files are kept: eviction
    /// demotes an entry to the disk tier, it does not forget it.
    fn enforce_budget(&self, protect: &CacheKey) {
        let Some(budget) = self.config.cache_bytes else {
            return;
        };
        if self.resident_bytes.load(Ordering::Relaxed) <= budget {
            return;
        }
        // Snapshot (key, stamp, bytes) of every evictable entry, oldest
        // first. The stamp race with concurrent touches makes this an
        // approximate LRU, which is all a cache needs.
        let mut candidates: Vec<(CacheKey, u64)> = Vec::new();
        for shard in &self.shards {
            let map = shard.read().expect("shard lock");
            for (key, slot) in map.iter() {
                if key != protect && matches!(slot.cell.get(), Some(Ok(_))) {
                    candidates.push((key.clone(), slot.last_used.load(Ordering::Relaxed)));
                }
            }
        }
        candidates.sort_by_key(|&(_, stamp)| stamp);
        for (key, _) in candidates {
            if self.resident_bytes.load(Ordering::Relaxed) <= budget {
                break;
            }
            let mut map = self.shard(&key).write().expect("shard lock");
            if let Some(slot) = map.get(&key) {
                if matches!(slot.cell.get(), Some(Ok(_))) {
                    let slot = map.remove(&key).expect("slot present");
                    // Capture the footprint before `forget_bytes` swaps
                    // the sketch bytes to zero.
                    let bytes = match slot.cell.get() {
                        Some(Ok(entry)) => {
                            (entry.stored_bytes as u64)
                                + entry.sketch_bytes.load(Ordering::SeqCst) as u64
                        }
                        _ => 0,
                    };
                    self.forget_bytes(&slot);
                    self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                    self.emit(RegistryEvent::Evicted {
                        key: key.fnv64(),
                        bytes,
                    });
                }
            }
        }
    }

    /// Garbage-collects the persistent warm tier down to
    /// [`RegistryConfig::cache_disk_bytes`]: artifacts are grouped by
    /// their 16-hex key stem (a key's sample, meta, and pairs files
    /// live and die together — removing a sample while keeping its
    /// meta would poison restores) and whole groups are removed
    /// least-recently-*used* first, `protect` (the key just persisted)
    /// last of all. Recency comes from the journal's per-key
    /// last-access order (restores touch it; they never touch the
    /// files' mtime, which is why mtime alone once evicted a hot
    /// restored key ahead of a cold never-requested one). Keys the
    /// journal has never seen sort before all known ones — they are
    /// exactly the never-requested artifacts the budget should drop
    /// first; mtime breaks ties and carries the whole ordering when
    /// the journal is disabled. Runs after every persist; best-effort
    /// like persistence itself.
    fn enforce_disk_budget(&self, protect: &CacheKey) {
        let (Some(dir), Some(budget)) = (&self.config.cache_dir, self.config.cache_disk_bytes)
        else {
            return;
        };
        let Ok(listing) = std::fs::read_dir(dir) else {
            return;
        };
        // stem → (newest artifact mtime, total bytes, paths)
        let mut groups: HashMap<String, (std::time::SystemTime, u64, Vec<PathBuf>)> =
            HashMap::new();
        let mut total: u64 = 0;
        for dirent in listing.flatten() {
            let name = dirent.file_name();
            let Some(stem) = name.to_str().and_then(artifact_stem) else {
                continue;
            };
            let Ok(meta) = dirent.metadata() else {
                continue;
            };
            let mtime = meta.modified().unwrap_or(UNIX_EPOCH);
            let bytes = meta.len();
            total += bytes;
            let group = groups
                .entry(stem.to_string())
                .or_insert((UNIX_EPOCH, 0, Vec::new()));
            group.0 = group.0.max(mtime);
            group.1 += bytes;
            group.2.push(dirent.path());
        }
        if total <= budget {
            return;
        }
        let protect_stem = format!("{:016x}", protect.fnv64());
        let access = self
            .wal
            .as_ref()
            .map(|w| w.last_access())
            .unwrap_or_default();
        let mut victims: Vec<(u64, std::time::SystemTime, String, u64, Vec<PathBuf>)> = groups
            .into_iter()
            .filter(|(stem, _)| *stem != protect_stem)
            .map(|(stem, (mtime, bytes, paths))| {
                let seq = u64::from_str_radix(&stem, 16)
                    .ok()
                    .and_then(|k| access.get(&k).copied())
                    .unwrap_or(0);
                (seq, mtime, stem, bytes, paths)
            })
            .collect();
        victims.sort_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));
        for (_, _, stem, bytes, paths) in victims {
            if total <= budget {
                break;
            }
            for path in paths {
                let _ = std::fs::remove_file(path);
            }
            total = total.saturating_sub(bytes);
            self.emit(RegistryEvent::DiskEvicted {
                key: u64::from_str_radix(&stem, 16).unwrap_or(0),
                bytes,
            });
        }
    }

    /// Attempts to restore `key` from the persistence directory.
    /// Succeeds only if the metadata matches the key exactly, the
    /// source file's current stamp matches the recorded one, and the
    /// sample file holds exactly the shape the metadata promises (a
    /// truncated or externally modified sample must re-scan, not
    /// silently change filter answers). Pre-version-2 metas (no
    /// content fingerprint, no column sketches, no checkpoint) are
    /// rejected wholesale by the version gate — the entry re-scans
    /// rather than silently materialising on the next `stats`.
    fn try_restore(&self, key: &CacheKey, ds: &DatasetRef) -> Option<Entry> {
        let dir = self.config.cache_dir.as_ref()?;
        let meta = read_meta(&meta_path(dir, key))?;
        if !meta.header.matches_key(key) {
            return None; // file-stem hash collision
        }
        let now = SourceStamp::capture(&key.path)?;
        if now != meta.header.source {
            return None; // the source changed since the sample was taken
        }
        let sample = read_csv_path(sample_path(dir, key), &CsvOptions::default()).ok()?;
        if sample.n_rows() != meta.sample_rows || sample.n_attrs() != meta.header.attrs {
            return None;
        }
        if meta.cols.len() != meta.header.attrs {
            return None;
        }
        // Resume the paused ingest, if the meta carries a checkpoint:
        // the persisted sample rows *are* the reservoir items in slot
        // order (the roundtrip guard at persist time proved they read
        // back value-exact). A checkpoint that does not cohere with
        // the header drops the resume — the entry still restores, it
        // just rebuilds fully on the next append.
        let ingest = meta
            .ingest
            .filter(|ck| ck.skip.seen == meta.header.rows)
            .and_then(|ck| {
                let names: Vec<String> = sample.schema().names().map(str::to_string).collect();
                let items: Vec<Vec<Value>> = (0..sample.n_rows())
                    .map(|row| {
                        (0..sample.n_attrs())
                            .map(|a| sample.value(row, AttrId::new(a)).clone())
                            .collect()
                    })
                    .collect();
                TupleIngest::resume(names, ck, items)
            });
        let params = FilterParams::new(ds.eps);
        let filter = TupleSampleFilter::from_sample(sample, params);
        let cols = meta
            .cols
            .into_iter()
            .map(|minima| DistinctSketch::from_minima(COLUMN_SKETCH_K, minima))
            .collect();
        Some(Entry::new(
            filter,
            None,
            cols,
            meta.header.rows,
            meta.header.attrs,
            Some(now),
            ingest,
        ))
    }

    /// Attempts to restore the entry's non-separation sketch from the
    /// persistence directory. Succeeds only if the sidecar metadata
    /// matches the key, the protocol's current sketch parameters, the
    /// entry's shape, and the source stat the *entry* was built
    /// against — so a sketch from an older file version can never be
    /// paired with a newer sample.
    fn try_restore_sketch(
        &self,
        key: &CacheKey,
        entry: &Entry,
        params: SketchParams,
    ) -> Option<NonSeparationSketch> {
        let dir = self.config.cache_dir.as_ref()?;
        let meta = read_pairs_meta(&pairs_meta_path(dir, key))?;
        if !meta.header.matches_key(key) {
            return None; // file-stem hash collision
        }
        if meta.alpha_bits != params.alpha.to_bits()
            || meta.rel_eps_bits != params.eps.to_bits()
            || meta.k != params.k
            || meta.multiplier_bits != params.multiplier.to_bits()
        {
            return None; // the server's sketch contract changed
        }
        if meta.header.rows != entry.rows
            || meta.header.attrs != entry.attrs
            || entry.source != Some(meta.header.source)
        {
            return None; // sketch and sample describe different data
        }
        let pairs = read_csv_path(pairs_path(dir, key), &CsvOptions::default()).ok()?;
        if pairs.n_rows() != meta.pair_rows
            || pairs.n_attrs() != entry.attrs
            || !pairs.n_rows().is_multiple_of(2)
        {
            return None;
        }
        Some(NonSeparationSketch::from_pair_rows(
            pairs, entry.rows, params,
        ))
    }
}

fn build_entry(ds: &DatasetRef, canonical_path: &str, mode: LoadMode) -> Result<Entry, String> {
    if !(ds.eps > 0.0 && ds.eps < 1.0) {
        return Err(format!("eps must be in (0, 1), got {}", ds.eps));
    }
    let params = FilterParams::new(ds.eps);
    // Stamp before the scan: a file rewritten *during* the read then
    // differs from the recorded stamp, so the next hit rebuilds.
    let source = SourceStamp::capture(canonical_path);
    match mode {
        LoadMode::Memory => {
            let dataset = read_csv_path(&ds.path, &CsvOptions::default())
                .map_err(|e| format!("reading {}: {e}", ds.path))?;
            if dataset.n_rows() < 2 || dataset.n_attrs() == 0 {
                return Err(format!(
                    "data set too small to analyse ({} rows x {} attributes)",
                    dataset.n_rows(),
                    dataset.n_attrs()
                ));
            }
            let filter = TupleSampleFilter::build(&dataset, params, ds.seed);
            let cols = cols_from_dataset(&dataset);
            let (rows, attrs) = (dataset.n_rows(), dataset.n_attrs());
            // No resumable ingest: a memory-mode entry must cover any
            // appended rows in its materialised dataset anyway, so an
            // append rebuilds it fully.
            Ok(Entry::new(
                filter,
                Some(dataset),
                cols,
                rows,
                attrs,
                source,
                None,
            ))
        }
        LoadMode::Stream => {
            let mut source_rows = CsvTupleSource::open(&ds.path, &CsvOptions::default())
                .map_err(|e| format!("reading {}: {e}", ds.path))?;
            let mut tee = CardinalityTee::new(&mut source_rows);
            // Driven through a TupleIngest (the same computation
            // `tuple_filter_from_stream` runs) so the reservoir + RNG
            // state stays on the entry: a later pure append resumes it
            // over just the new suffix.
            let mut ingest = TupleIngest::new(tee.attr_names(), params, ds.seed);
            loop {
                match tee.next_tuple() {
                    Ok(Some(tuple)) => {
                        ingest.push(tuple);
                    }
                    Ok(None) => break,
                    Err(e) => return Err(format!("streaming {}: {e}", ds.path)),
                }
            }
            let filter = ingest
                .to_filter(params)
                .map_err(|e| format!("streaming {}: {e}", ds.path))?;
            let cols = tee.into_cols();
            let rows = source_rows.rows_read();
            let attrs = source_rows.n_attrs();
            if rows < 2 || attrs == 0 {
                return Err(format!(
                    "data set too small to analyse ({rows} rows x {attrs} attributes)"
                ));
            }
            Ok(Entry::new(
                filter,
                None,
                cols,
                rows,
                attrs,
                source,
                Some(ingest),
            ))
        }
    }
}

/// Column sketches for a materialised dataset, fed from the column
/// dictionaries: a freshly parsed dataset's dictionary *is* its
/// distinct value set, and KMV state depends only on that set, so this
/// produces byte-identical sketches to streaming every row — in
/// `O(distinct)` instead of `O(n)` per column.
fn cols_from_dataset(ds: &Dataset) -> Vec<DistinctSketch> {
    (0..ds.n_attrs())
        .map(|a| {
            let mut sk = DistinctSketch::new(COLUMN_SKETCH_K);
            for v in ds.column(AttrId::new(a)).dict().iter() {
                sk.observe(v);
            }
            sk
        })
        .collect()
}

/// A pass-through [`TupleSource`] that feeds every tuple's values into
/// per-column [`DistinctSketch`]s on the way to the sample reservoir,
/// so one streaming scan produces both artifacts.
struct CardinalityTee<'a> {
    inner: &'a mut dyn TupleSource,
    cols: Vec<DistinctSketch>,
}

impl<'a> CardinalityTee<'a> {
    fn new(inner: &'a mut dyn TupleSource) -> Self {
        let cols = (0..inner.n_attrs())
            .map(|_| DistinctSketch::new(COLUMN_SKETCH_K))
            .collect();
        CardinalityTee { inner, cols }
    }

    fn into_cols(self) -> Vec<DistinctSketch> {
        self.cols
    }
}

impl TupleSource for CardinalityTee<'_> {
    fn attr_names(&self) -> Vec<String> {
        self.inner.attr_names()
    }

    fn n_attrs(&self) -> usize {
        self.inner.n_attrs()
    }

    fn next_tuple(&mut self) -> Result<Option<Vec<Value>>, DatasetError> {
        let tuple = self.inner.next_tuple()?;
        if let Some(tuple) = &tuple {
            for (sk, v) in self.cols.iter_mut().zip(tuple) {
                sk.observe(v);
            }
        }
        Ok(tuple)
    }

    fn size_hint(&self) -> Option<usize> {
        self.inner.size_hint()
    }
}

// ---------------------------------------------------- persistence tier

/// On-disk format version; bump on any layout change so old files are
/// ignored, not misread. Version 2 added the source content
/// fingerprint, made the column-sketch state mandatory (so a restored
/// entry can never silently materialise on `stats`), and added the
/// optional ingest checkpoint. Version 3 added the whole-content FNV
/// (the append path's integrity gate) and the stamp's capture time
/// (the racy-stat discipline) to the source stat. Older metas are
/// rejected by the version gate and simply re-scan.
const PERSIST_VERSION: i64 = 3;

fn meta_path(dir: &Path, key: &CacheKey) -> PathBuf {
    dir.join(format!("{:016x}.meta.json", key.fnv64()))
}

fn sample_path(dir: &Path, key: &CacheKey) -> PathBuf {
    dir.join(format!("{:016x}.sample.csv", key.fnv64()))
}

fn pairs_meta_path(dir: &Path, key: &CacheKey) -> PathBuf {
    dir.join(format!("{:016x}.pairs.json", key.fnv64()))
}

fn pairs_path(dir: &Path, key: &CacheKey) -> PathBuf {
    dir.join(format!("{:016x}.pairs.csv", key.fnv64()))
}

/// True iff `name` is one of the registry's persisted artifact files:
/// a 16-hex-digit key stem followed by a known extension. `unload
/// --all` uses this to purge the cache dir without touching foreign
/// files (the dir may be shared, and in-flight `.tmp-*` files belong
/// to the tmp sweeper, not the purge).
fn is_cache_artifact(name: &str) -> bool {
    artifact_stem(name).is_some()
}

/// The 16-hex-digit key stem of a persisted artifact file name, or
/// `None` for foreign files. The disk-budget GC groups artifacts by
/// this stem so a key's files are removed together.
fn artifact_stem(name: &str) -> Option<&str> {
    const SUFFIXES: [&str; 4] = [".meta.json", ".sample.csv", ".pairs.json", ".pairs.csv"];
    SUFFIXES.iter().find_map(|suffix| {
        name.strip_suffix(suffix)
            .filter(|stem| stem.len() == 16 && stem.bytes().all(|b| b.is_ascii_hexdigit()))
    })
}

/// The cache-key identity and source stat every persisted artifact's
/// metadata carries. One writer ([`header_fields`]) and one reader
/// ([`read_header`]) serve both the sample meta and the pairs sidecar,
/// so the two file formats cannot drift apart field by field.
struct PersistedHeader {
    path: String,
    eps_bits: u64,
    seed: u64,
    rows: usize,
    attrs: usize,
    source: SourceStamp,
}

impl PersistedHeader {
    /// True iff the header names exactly this cache key (a fnv64
    /// file-stem collision fails here).
    fn matches_key(&self, key: &CacheKey) -> bool {
        self.path == key.path && self.eps_bits == key.eps_bits && self.seed == key.seed
    }
}

/// Renders the shared header (version, key identity, shape, source
/// stat) for a persisted artifact's metadata file.
fn header_fields(
    key: &CacheKey,
    rows: usize,
    attrs: usize,
    source: SourceStamp,
) -> Vec<(&'static str, Json)> {
    vec![
        ("version", Json::Int(PERSIST_VERSION)),
        ("path", s(&key.path)),
        ("eps_bits", json::u64_value(key.eps_bits)),
        ("seed", json::u64_value(key.seed)),
        ("rows", Json::Int(rows as i64)),
        ("attrs", Json::Int(attrs as i64)),
        ("source_len", json::u64_value(source.len)),
        ("source_mtime_s", json::u64_value(source.mtime_s)),
        ("source_mtime_ns", Json::Int(i64::from(source.mtime_ns))),
        ("source_fnv", json::u64_value(source.prefix_fnv)),
        ("source_full_fnv", json::u64_value(source.full_fnv)),
        ("source_captured_ms", json::u64_value(source.captured_ms)),
    ]
}

/// Parses the shared header, rejecting unknown versions.
fn read_header(v: &Json) -> Option<PersistedHeader> {
    if v.get("version").and_then(Json::as_i64) != Some(PERSIST_VERSION) {
        return None;
    }
    let u64_field = |name: &str| v.get(name)?.as_u64_lossless();
    Some(PersistedHeader {
        path: v.get("path").and_then(Json::as_str)?.to_string(),
        eps_bits: u64_field("eps_bits")?,
        seed: u64_field("seed")?,
        rows: v.get("rows").and_then(Json::as_usize)?,
        attrs: v.get("attrs").and_then(Json::as_usize)?,
        source: SourceStamp {
            len: u64_field("source_len")?,
            mtime_s: u64_field("source_mtime_s")?,
            mtime_ns: v.get("source_mtime_ns").and_then(Json::as_u64)? as u32,
            prefix_fnv: u64_field("source_fnv")?,
            full_fnv: u64_field("source_full_fnv")?,
            captured_ms: u64_field("source_captured_ms")?,
        },
    })
}

struct PersistedMeta {
    header: PersistedHeader,
    /// Rows in the persisted sample file — restore integrity check.
    sample_rows: usize,
    /// Per-column KMV minima (the column sketches' full state),
    /// mandatory since version 2 so a restored entry always answers
    /// `stats` without materialising.
    cols: Vec<Vec<u64>>,
    /// The paused ingest's scalar state (reservoir skip state + RNG
    /// words); the retained rows are the sample file itself. Absent
    /// for memory-mode entries, whose appends rebuild fully.
    ingest: Option<IngestCheckpoint>,
}

/// Renders `ds` as CSV and proves the bytes round-trip value-exactly.
/// CSV typing is re-inferred on read, so two values distinct in a
/// column can collapse to one textual form (`Int(1)` and `Float(1.0)`
/// both render "1") — and a merged pair would change filter and sketch
/// answers. Data that would come back different is not persisted at
/// all: correctness beats a warm start. Persisted artifacts are
/// sample-sized, so the check is cheap.
fn render_if_roundtrips(ds: &Dataset) -> std::io::Result<Option<Vec<u8>>> {
    let mut buf = Vec::new();
    write_csv(ds, &mut buf)?;
    let roundtrips = std::str::from_utf8(&buf)
        .ok()
        .and_then(|text| read_csv_str(text, &CsvOptions::default()).ok())
        .is_some_and(|back| {
            back.n_rows() == ds.n_rows()
                && back.n_attrs() == ds.n_attrs()
                && (0..ds.n_rows()).all(|row| {
                    (0..ds.n_attrs())
                        .map(AttrId::new)
                        .all(|attr| back.value(row, attr) == ds.value(row, attr))
                })
        });
    Ok(roundtrips.then_some(buf))
}

/// A fresh temp-file suffix, unique per writer (pid + counter): with
/// several server processes sharing one cache dir, a rename can only
/// ever publish bytes its own process wrote, so an artifact from
/// writer A can never end up paired with metadata from writer B.
fn fresh_tmp_suffix() -> String {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    format!(
        "{}-{}.tmp",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    )
}

/// Writes the entry's sample and metadata under `dir`. Both files are
/// written to a temp path and renamed into place, the sample first and
/// the metadata last, so a readable `.meta.json` always describes a
/// complete sample file — even when a re-persist of the same key is
/// killed mid-write.
fn persist_entry(dir: &Path, key: &CacheKey, entry: &Entry) -> std::io::Result<()> {
    // Entries built from an unstattable source cannot be validated on
    // restore; don't persist them.
    let Some(source) = entry.source else {
        return Ok(());
    };
    let sample = entry.filter.sample();
    let Some(buf) = render_if_roundtrips(sample)? else {
        return Ok(());
    };
    std::fs::create_dir_all(dir)?;
    let tmp_suffix = fresh_tmp_suffix();
    let sample_final = sample_path(dir, key);
    let sample_tmp = sample_final.with_extension(&tmp_suffix);
    publish(&sample_tmp, &buf, &sample_final)?;
    let mut fields = header_fields(key, entry.rows, entry.attrs, source);
    fields.push(("sample_rows", Json::Int(sample.n_rows() as i64)));
    // The column sketches' full state (k minima per column) rides
    // along, so a restored entry keeps answering `stats` without a
    // scan. ~8·k·m bytes — still sample-scale.
    fields.push((
        "cols",
        Json::Arr(
            entry
                .cols
                .iter()
                .map(|sk| Json::Arr(sk.minima().map(json::u64_value).collect()))
                .collect(),
        ),
    ));
    if let Some(ingest) = &entry.ingest {
        // The paused build's scalar state. The sample rows written
        // above are the reservoir items in slot order, so checkpoint +
        // sample reconstruct the exact mid-stream trajectory — an
        // append after a restart still absorbs incrementally.
        let ck = ingest.checkpoint();
        fields.push((
            "ingest",
            obj(vec![
                ("capacity", Json::Int(ck.skip.capacity as i64)),
                ("seen", Json::Int(ck.skip.seen as i64)),
                ("next_accept", json::u64_value(ck.skip.next_accept as u64)),
                ("w_bits", json::u64_value(ck.skip.w_bits)),
                (
                    "rng",
                    Json::Arr(ck.rng.iter().copied().map(json::u64_value).collect()),
                ),
            ]),
        ));
    }
    let meta = obj(fields).render();
    let final_path = meta_path(dir, key);
    let tmp_path = final_path.with_extension(tmp_suffix);
    publish(&tmp_path, format!("{meta}\n").as_bytes(), &final_path)
}

/// Writes the entry's non-separation pair sample and its sidecar
/// metadata under `dir` (pairs CSV first, metadata last — same
/// publish discipline as [`persist_entry`]).
fn persist_sketch(
    dir: &Path,
    key: &CacheKey,
    entry: &Entry,
    sketch: &NonSeparationSketch,
    params: SketchParams,
) -> std::io::Result<()> {
    let Some(source) = entry.source else {
        return Ok(());
    };
    let Some(buf) = render_if_roundtrips(sketch.pairs())? else {
        return Ok(());
    };
    std::fs::create_dir_all(dir)?;
    let tmp_suffix = fresh_tmp_suffix();
    let pairs_final = pairs_path(dir, key);
    let pairs_tmp = pairs_final.with_extension(&tmp_suffix);
    publish(&pairs_tmp, &buf, &pairs_final)?;
    let mut fields = header_fields(key, entry.rows, entry.attrs, source);
    fields.extend([
        ("pair_rows", Json::Int(sketch.pairs().n_rows() as i64)),
        ("alpha_bits", json::u64_value(params.alpha.to_bits())),
        ("rel_eps_bits", json::u64_value(params.eps.to_bits())),
        ("k", Json::Int(params.k as i64)),
        (
            "multiplier_bits",
            json::u64_value(params.multiplier.to_bits()),
        ),
    ]);
    let meta = obj(fields).render();
    let final_path = pairs_meta_path(dir, key);
    let tmp_path = final_path.with_extension(tmp_suffix);
    publish(&tmp_path, format!("{meta}\n").as_bytes(), &final_path)
}

/// Writes `bytes` to `tmp` and renames it onto `dest`, removing the
/// temp file if either step fails so failed persists leave no orphans.
/// (Orphans from a *killed* process are swept at registry creation.)
fn publish(tmp: &Path, bytes: &[u8], dest: &Path) -> std::io::Result<()> {
    let result = std::fs::write(tmp, bytes).and_then(|()| std::fs::rename(tmp, dest));
    if result.is_err() {
        let _ = std::fs::remove_file(tmp);
    }
    result
}

/// How old a `*.tmp` file must be before the startup sweep removes it.
/// An in-flight persist lives milliseconds between write and rename;
/// an hour-old temp file can only be debris from a killed writer. The
/// age gate keeps the sweep from deleting a live sibling process's
/// in-flight file when several servers share one cache dir.
const TMP_SWEEP_MIN_AGE: std::time::Duration = std::time::Duration::from_secs(3600);

/// Removes `*.tmp` files left behind by a writer killed mid-persist
/// (temp names are never reused: pid + counter).
///
/// With `crashed` — the journal found no clean-shutdown record for the
/// previous life — every tmp file is known debris and is reclaimed
/// immediately, so a crash-restart loop faster than the age gate
/// cannot accumulate orphans inside the disk budget's directory.
/// Without crash evidence (clean shutdown, first boot, or no journal)
/// only files past [`TMP_SWEEP_MIN_AGE`] go, preserving a live sibling
/// process's in-flight persist.
fn sweep_tmp_files(dir: &Path, crashed: bool) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        if !entry.file_name().to_string_lossy().ends_with(".tmp") {
            continue;
        }
        let old_enough = crashed
            || entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                .is_some_and(|age| age >= TMP_SWEEP_MIN_AGE);
        if old_enough {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

fn read_meta(path: &Path) -> Option<PersistedMeta> {
    let text = std::fs::read_to_string(path).ok()?;
    let v = json::parse(text.trim()).ok()?;
    let header = read_header(&v)?;
    // Column-sketch state is mandatory since version 2, and must be
    // well-formed — a corrupt list rejects the whole meta rather than
    // restoring a half-right entry.
    let cols = v
        .get("cols")?
        .as_arr()?
        .iter()
        .map(|col| {
            col.as_arr()?
                .iter()
                .map(Json::as_u64_lossless)
                .collect::<Option<Vec<u64>>>()
        })
        .collect::<Option<Vec<Vec<u64>>>>()?;
    // The ingest checkpoint is optional (memory-mode entries), but
    // when present it must be complete.
    let ingest = match v.get("ingest") {
        None => None,
        Some(ck) => Some(IngestCheckpoint {
            skip: SkipState {
                capacity: ck.get("capacity").and_then(Json::as_usize)?,
                seen: ck.get("seen").and_then(Json::as_usize)?,
                next_accept: usize::try_from(ck.get("next_accept")?.as_u64_lossless()?).ok()?,
                w_bits: ck.get("w_bits")?.as_u64_lossless()?,
            },
            rng: {
                let words = ck.get("rng")?.as_arr()?;
                if words.len() != 4 {
                    return None;
                }
                let mut rng = [0u64; 4];
                for (slot, w) in rng.iter_mut().zip(words) {
                    *slot = w.as_u64_lossless()?;
                }
                rng
            },
        }),
    };
    Some(PersistedMeta {
        header,
        sample_rows: v.get("sample_rows").and_then(Json::as_usize)?,
        cols,
        ingest,
    })
}

struct PersistedPairsMeta {
    header: PersistedHeader,
    /// Rows in the persisted pairs file (`2s`) — restore integrity
    /// check.
    pair_rows: usize,
    alpha_bits: u64,
    rel_eps_bits: u64,
    k: usize,
    multiplier_bits: u64,
}

fn read_pairs_meta(path: &Path) -> Option<PersistedPairsMeta> {
    let text = std::fs::read_to_string(path).ok()?;
    let v = json::parse(text.trim()).ok()?;
    let header = read_header(&v)?;
    let u64_field = |name: &str| v.get(name)?.as_u64_lossless();
    Some(PersistedPairsMeta {
        header,
        pair_rows: v.get("pair_rows").and_then(Json::as_usize)?,
        alpha_bits: u64_field("alpha_bits")?,
        rel_eps_bits: u64_field("rel_eps_bits")?,
        k: v.get("k").and_then(Json::as_usize)?,
        multiplier_bits: u64_field("multiplier_bits")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn unique_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "qid-registry-tests-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_fixture(path: &Path, rows: usize, salt: u64) {
        let mut f = std::fs::File::create(path).unwrap();
        writeln!(f, "id,parity").unwrap();
        for i in 0..rows {
            writeln!(f, "{},{}", i as u64 + salt * 1_000_000, i % 2).unwrap();
        }
    }

    fn fixture_csv(name: &str, rows: usize) -> String {
        let dir = unique_dir("csv");
        let path = dir.join(name);
        write_fixture(&path, rows, 0);
        path.to_str().unwrap().to_string()
    }

    fn dsref(path: &str) -> DatasetRef {
        DatasetRef {
            path: path.into(),
            eps: 0.01,
            seed: 7,
        }
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let path = fixture_csv("hit.csv", 300);
        let reg = Registry::new();
        let (first, hit1) = reg.get_or_load(&dsref(&path), LoadMode::Memory);
        let (second, hit2) = reg.get_or_load(&dsref(&path), LoadMode::Memory);
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&first.unwrap(), &second.unwrap()));
        assert_eq!(reg.hits(), 1);
        assert_eq!(reg.misses(), 1);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn unload_all_purges_resident_and_persisted() {
        let dir = unique_dir("unload-all");
        let reg = Registry::with_config(RegistryConfig {
            cache_dir: Some(dir.clone()),
            ..RegistryConfig::default()
        });
        let path_a = fixture_csv("purge-a.csv", 300);
        let path_b = fixture_csv("purge-b.csv", 400);
        reg.get_or_load(&dsref(&path_a), LoadMode::Memory)
            .0
            .unwrap();
        reg.get_or_load(&dsref(&path_b), LoadMode::Memory)
            .0
            .unwrap();
        // A foreign file in a shared cache dir must survive the purge.
        let foreign = dir.join("notes.txt");
        std::fs::write(&foreign, "keep me").unwrap();
        assert_eq!(reg.len(), 2);
        assert!(reg.snapshot().resident_bytes > 0);

        let removed = reg.unload_all();
        // 2 resident entries + 2 persisted artifacts each (meta + sample).
        assert_eq!(removed, 6);
        assert!(reg.is_empty());
        assert_eq!(reg.snapshot().resident_bytes, 0);
        assert!(foreign.exists(), "purge must not touch foreign files");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|d| d.file_name().to_str().is_some_and(is_cache_artifact))
            .collect();
        assert!(leftovers.is_empty(), "artifacts left behind: {leftovers:?}");

        // Idempotent: a second purge finds nothing.
        assert_eq!(reg.unload_all(), 0);
        // Purged keys rebuild cleanly on the next request.
        let (entry, hit) = reg.get_or_load(&dsref(&path_a), LoadMode::Memory);
        assert!(entry.is_ok());
        assert!(!hit);
    }

    #[test]
    fn cache_artifact_names_are_recognised() {
        assert!(is_cache_artifact("00c0ffee00c0ffee.meta.json"));
        assert!(is_cache_artifact("0123456789abcdef.sample.csv"));
        assert!(is_cache_artifact("0123456789abcdef.pairs.json"));
        assert!(is_cache_artifact("0123456789abcdef.pairs.csv"));
        assert!(!is_cache_artifact("0123456789abcdef.tmp-1-2.sample.csv"));
        assert!(!is_cache_artifact("notes.txt"));
        assert!(!is_cache_artifact("short.meta.json"));
        assert!(!is_cache_artifact("0123456789abcdeg.meta.json"));
    }

    #[test]
    fn event_sink_sees_the_entry_lifecycle() {
        static EVENTS: AtomicU64 = AtomicU64::new(0);
        fn count(event: RegistryEvent) {
            let bit = match event {
                RegistryEvent::Built { .. } => 1,
                RegistryEvent::Unloaded { .. } => 1 << 1,
                RegistryEvent::Purged { .. } => 1 << 2,
                _ => 1 << 3,
            };
            EVENTS.fetch_or(bit, Ordering::Relaxed);
        }
        let reg = Registry::with_config(RegistryConfig {
            event_sink: Some(count),
            ..RegistryConfig::default()
        });
        let path = fixture_csv("events.csv", 300);
        reg.get_or_load(&dsref(&path), LoadMode::Memory).0.unwrap();
        assert!(reg.unload(&dsref(&path)));
        reg.get_or_load(&dsref(&path), LoadMode::Memory).0.unwrap();
        reg.unload_all();
        let seen = EVENTS.load(Ordering::Relaxed);
        assert_eq!(seen & 1, 1, "build event");
        assert_eq!(seen & (1 << 1), 1 << 1, "unload event");
        assert_eq!(seen & (1 << 2), 1 << 2, "purge event");
    }

    #[test]
    fn peek_serves_within_the_revalidation_window() {
        let path = fixture_csv("peek.csv", 300);
        let reg = Registry::with_config(RegistryConfig {
            revalidate_ms: 60_000,
            ..RegistryConfig::default()
        });
        let ds = dsref(&path);
        let key = CacheKey::of(&ds);
        assert!(reg.peek(&key).is_none(), "nothing resident yet");
        let (built, _) = reg.get_or_load(&ds, LoadMode::Memory);
        let built = built.unwrap();
        let peeked = reg.peek(&key).expect("fresh build opens the window");
        assert!(Arc::ptr_eq(&built, &peeked));
        assert_eq!(reg.hits(), 1, "peek counts as a cache hit");
        // An unknown key stays a clean miss.
        let mut other = ds.clone();
        other.seed = 99;
        assert!(reg.peek(&CacheKey::of(&other)).is_none());
    }

    #[test]
    fn peek_disabled_by_default_and_expires() {
        let path = fixture_csv("peek-off.csv", 300);
        let ds = dsref(&path);
        let key = CacheKey::of(&ds);

        // Default config: window is 0, peek never serves.
        let strict = Registry::new();
        strict.get_or_load(&ds, LoadMode::Memory).0.unwrap();
        assert!(strict.peek(&key).is_none(), "revalidate_ms=0 disables peek");

        // A short window expires, and a general-path hit (which
        // re-stats the source) re-opens it.
        let reg = Registry::with_config(RegistryConfig {
            revalidate_ms: 200,
            ..RegistryConfig::default()
        });
        reg.get_or_load(&ds, LoadMode::Memory).0.unwrap();
        std::thread::sleep(std::time::Duration::from_millis(250));
        assert!(reg.peek(&key).is_none(), "stale stamp closes the window");
        reg.get_or_load(&ds, LoadMode::Memory).0.unwrap();
        assert!(reg.peek(&key).is_some());
    }

    #[test]
    fn different_seed_is_a_different_entry() {
        let path = fixture_csv("seeds.csv", 300);
        let reg = Registry::new();
        let (_, _) = reg.get_or_load(&dsref(&path), LoadMode::Memory);
        let mut other = dsref(&path);
        other.seed = 8;
        let (_, hit) = reg.get_or_load(&other, LoadMode::Memory);
        assert!(!hit);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn stream_mode_keeps_only_the_sample() {
        let path = fixture_csv("stream.csv", 500);
        let reg = Registry::new();
        let (entry, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        let entry = entry.unwrap();
        assert!(entry.dataset.is_none());
        assert_eq!(entry.rows, 500);
        assert_eq!(entry.attrs, 2);
        // m=2, eps=0.01 → 20 sampled tuples.
        assert_eq!(entry.filter.sample().n_rows(), 20);
        assert!(entry.stored_bytes > 0);
        assert_eq!(reg.snapshot().resident_bytes, entry.stored_bytes as u64);
    }

    #[test]
    fn failed_builds_are_evicted_and_retryable() {
        let reg = Registry::new();
        let missing = dsref("/definitely/not/here.csv");
        let (err, hit) = reg.get_or_load(&missing, LoadMode::Memory);
        assert!(err.is_err());
        assert!(!hit);
        assert_eq!(reg.len(), 0, "failed entry must not stay resident");
        // Retry is a fresh miss, not a cached error.
        let (err2, hit2) = reg.get_or_load(&missing, LoadMode::Memory);
        assert!(err2.is_err());
        assert!(!hit2);
        assert_eq!(reg.snapshot().resident_bytes, 0);
    }

    #[test]
    fn concurrent_cold_lookups_share_one_build() {
        let path = fixture_csv("race.csv", 400);
        let reg = Arc::new(Registry::new());
        let entries: Vec<Arc<Entry>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    let ds = dsref(&path);
                    scope.spawn(move || reg.get_or_load(&ds, LoadMode::Memory).0.unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for e in &entries[1..] {
            assert!(Arc::ptr_eq(&entries[0], e), "all clients share one entry");
        }
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.misses(), 1, "exactly one scan");
        assert_eq!(reg.hits() + reg.misses(), 4);
    }

    #[test]
    fn materialised_lookup_upgrades_stream_entries() {
        let path = fixture_csv("upgrade.csv", 300);
        let reg = Registry::new();
        let (entry, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        assert!(entry.unwrap().dataset.is_none());
        let (upgraded, hit) = reg.get_or_load_materialised(&dsref(&path));
        assert!(!hit, "an upgrade re-scans, so it is not a hit");
        assert!(upgraded.unwrap().dataset.is_some());
        assert_eq!(reg.len(), 1);
        // The upgraded entry is now the cached one.
        let (again, hit) = reg.get_or_load_materialised(&dsref(&path));
        assert!(hit);
        let again = again.unwrap();
        assert!(again.dataset.is_some());
        assert_eq!(reg.hits(), 1);
        assert_eq!(reg.misses(), 2);
        // The replaced sample-only entry's bytes were released.
        assert_eq!(reg.snapshot().resident_bytes, again.stored_bytes as u64);
    }

    #[test]
    fn concurrent_upgrades_share_one_rescan() {
        let path = fixture_csv("upgrade-race.csv", 400);
        let reg = Arc::new(Registry::new());
        let (entry, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream); // 1 miss
        assert!(entry.unwrap().dataset.is_none());
        let entries: Vec<Arc<Entry>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    let ds = dsref(&path);
                    scope.spawn(move || reg.get_or_load_materialised(&ds).0.unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for e in &entries {
            assert!(e.dataset.is_some());
            assert!(
                Arc::ptr_eq(&entries[0], e),
                "all upgraders share one rebuilt entry"
            );
        }
        // Stream build + exactly one upgrade re-scan; the other three
        // upgraders waited on the same slot and count as hits.
        assert_eq!(reg.misses(), 2);
        assert_eq!(reg.hits(), 3);
    }

    #[test]
    fn bad_eps_is_an_error_not_a_panic() {
        let path = fixture_csv("eps.csv", 100);
        let reg = Registry::new();
        let mut ds = dsref(&path);
        ds.eps = 0.0;
        let (res, _) = reg.get_or_load(&ds, LoadMode::Memory);
        assert!(res.is_err());
    }

    #[test]
    fn lru_eviction_respects_touch_order() {
        let dir = unique_dir("lru");
        let paths: Vec<String> = (0..3)
            .map(|i| {
                let p = dir.join(format!("d{i}.csv"));
                write_fixture(&p, 300, i);
                p.to_str().unwrap().to_string()
            })
            .collect();
        // Measure one entry (sample + column sketches) on a throwaway
        // registry, then budget for two entries but not three.
        let per_entry = {
            let probe = Registry::new();
            let (e, _) = probe.get_or_load(&dsref(&paths[0]), LoadMode::Stream);
            e.unwrap().stored_bytes as u64
        };
        let budget = 2 * per_entry + per_entry / 2;
        let reg = Registry::with_config(RegistryConfig {
            cache_bytes: Some(budget),
            ..RegistryConfig::default()
        });
        let (e0, _) = reg.get_or_load(&dsref(&paths[0]), LoadMode::Stream);
        assert_eq!(e0.unwrap().stored_bytes as u64, per_entry);
        let (_, _) = reg.get_or_load(&dsref(&paths[1]), LoadMode::Stream);
        assert_eq!(reg.len(), 2, "two entries fit the budget");
        // Touch d0 so d1 is the LRU victim when d2 arrives.
        let (_, hit) = reg.get_or_load(&dsref(&paths[0]), LoadMode::Stream);
        assert!(hit);
        let (_, _) = reg.get_or_load(&dsref(&paths[2]), LoadMode::Stream);
        let snap = reg.snapshot();
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.datasets, 2);
        assert!(snap.resident_bytes <= budget);
        // d0 survived (recently touched), d1 was evicted.
        let (_, hit0) = reg.get_or_load(&dsref(&paths[0]), LoadMode::Stream);
        assert!(hit0, "recently-touched entry must survive");
        let before = reg.misses();
        let (_, hit1) = reg.get_or_load(&dsref(&paths[1]), LoadMode::Stream);
        assert!(!hit1, "LRU entry must have been evicted");
        assert_eq!(reg.misses(), before + 1);
    }

    #[test]
    fn over_budget_entry_is_still_served() {
        let path = fixture_csv("big.csv", 300);
        let reg = Registry::with_config(RegistryConfig {
            cache_bytes: Some(1), // nothing fits
            ..RegistryConfig::default()
        });
        let (entry, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        assert!(entry.is_ok(), "the protected entry is never evicted");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.snapshot().evictions, 0);
    }

    #[test]
    fn persistence_restores_without_a_scan() {
        let dir = unique_dir("persist");
        let path = fixture_csv("warm.csv", 400);
        // Journal off: this test pins the lazy on-demand restore path,
        // which still serves WAL-less dirs (and keys outside the
        // journal's resident set). Eager re-admission has its own
        // tests below.
        let config = RegistryConfig {
            cache_dir: Some(dir.clone()),
            wal_max_bytes: 0,
            ..RegistryConfig::default()
        };
        let first = Registry::with_config(config.clone());
        let (built, _) = first.get_or_load(&dsref(&path), LoadMode::Stream);
        let built = built.unwrap();
        assert_eq!(first.misses(), 1);
        drop(first);

        // A "restarted server": a fresh registry over the same dir.
        let second = Registry::with_config(config);
        let (restored, hit) = second.get_or_load(&dsref(&path), LoadMode::Stream);
        let restored = restored.unwrap();
        assert!(!hit);
        assert_eq!(second.misses(), 0, "no source scan on a warm start");
        assert_eq!(second.disk_hits(), 1);
        assert_eq!(restored.rows, built.rows);
        assert_eq!(restored.attrs, built.attrs);
        assert_eq!(
            restored.filter.sample().n_rows(),
            built.filter.sample().n_rows()
        );
        // The restored sample answers queries identically.
        use qid_dataset::AttrId;
        for attrs in [vec![AttrId::new(0)], vec![AttrId::new(1)]] {
            assert_eq!(
                restored.filter.query(&attrs),
                built.filter.query(&attrs),
                "restored filter must agree on {attrs:?}"
            );
        }
    }

    #[test]
    fn stale_source_triggers_rebuild_not_stale_answer() {
        let dir = unique_dir("stale");
        let path = dir.join("mut.csv");
        write_fixture(&path, 300, 0);
        let ds = dsref(path.to_str().unwrap());
        let reg = Registry::new();
        let (first, _) = reg.get_or_load(&ds, LoadMode::Stream);
        let first = first.unwrap();
        assert_eq!(first.rows, 300);

        // Rewrite in place with different content (and length).
        write_fixture(&path, 500, 9);
        let (second, hit) = reg.get_or_load(&ds, LoadMode::Stream);
        let second = second.unwrap();
        assert!(!hit, "a stale entry is not a hit");
        assert_eq!(second.rows, 500, "the rebuilt entry sees the new file");
        assert!(!Arc::ptr_eq(&first, &second));
        let snap = reg.snapshot();
        assert_eq!(snap.stale_rebuilds, 1);
        assert_eq!(snap.misses, 2);
        assert_eq!(snap.datasets, 1);
        assert_eq!(snap.resident_bytes, second.stored_bytes as u64);
    }

    #[test]
    fn stale_source_also_invalidates_the_disk_tier() {
        let dir = unique_dir("stale-disk");
        let path = dir.join("mut.csv");
        write_fixture(&path, 300, 0);
        let ds = dsref(path.to_str().unwrap());
        let config = RegistryConfig {
            cache_dir: Some(dir.clone()),
            wal_max_bytes: 0,
            ..RegistryConfig::default()
        };
        let first = Registry::with_config(config.clone());
        let (_, _) = first.get_or_load(&ds, LoadMode::Stream);
        drop(first);

        write_fixture(&path, 500, 9);
        let second = Registry::with_config(config);
        let (entry, _) = second.get_or_load(&ds, LoadMode::Stream);
        assert_eq!(entry.unwrap().rows, 500, "stale persisted sample ignored");
        assert_eq!(second.disk_hits(), 0);
        assert_eq!(second.misses(), 1);
    }

    #[test]
    fn unload_removes_resident_and_persisted_state() {
        let dir = unique_dir("unload");
        let path = fixture_csv("gone.csv", 300);
        let config = RegistryConfig {
            cache_dir: Some(dir.clone()),
            ..RegistryConfig::default()
        };
        let reg = Registry::with_config(config);
        let ds = dsref(&path);
        let (_, _) = reg.get_or_load(&ds, LoadMode::Stream);
        assert_eq!(reg.len(), 1);
        assert!(reg.unload(&ds));
        assert_eq!(reg.len(), 0);
        assert_eq!(reg.snapshot().resident_bytes, 0);
        assert!(!reg.unload(&ds), "second unload finds nothing");
        // The disk tier is gone too: the next lookup is a full miss.
        let (_, hit) = reg.get_or_load(&ds, LoadMode::Stream);
        assert!(!hit);
        assert_eq!(reg.disk_hits(), 0);
        assert_eq!(reg.misses(), 2);
    }

    #[test]
    fn lossy_float_samples_are_not_persisted() {
        // "1" parses as Int(1) and "1.0" as Float(1.0) — distinct
        // values in the column, but both render "1", so a CSV
        // round-trip would merge them and change filter answers. Such
        // samples must skip the disk tier entirely.
        let dir = unique_dir("lossy");
        let path = dir.join("floats.csv");
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "id,v").unwrap();
        for i in 0..10 {
            writeln!(f, "{i},1").unwrap();
        }
        for i in 10..20 {
            writeln!(f, "{i},1.0").unwrap();
        }
        drop(f);
        let config = RegistryConfig {
            cache_dir: Some(dir.clone()),
            wal_max_bytes: 0,
            ..RegistryConfig::default()
        };
        let ds = dsref(path.to_str().unwrap());
        let first = Registry::with_config(config.clone());
        // m=2, eps=0.01 → r=20 = n: the sample holds every row,
        // including both spellings of 1.
        let (entry, _) = first.get_or_load(&ds, LoadMode::Stream);
        assert_eq!(entry.unwrap().filter.sample().n_rows(), 20);
        let persisted = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .any(|e| e.file_name().to_string_lossy().ends_with(".meta.json"));
        assert!(!persisted, "a lossy sample must not reach the disk tier");
        drop(first);

        // A restart pays the scan again instead of serving a merged,
        // wrong sample.
        let second = Registry::with_config(config);
        let (restored, _) = second.get_or_load(&ds, LoadMode::Stream);
        assert_eq!(second.disk_hits(), 0);
        assert_eq!(second.misses(), 1);
        assert_eq!(restored.unwrap().filter.sample().n_rows(), 20);
    }

    #[test]
    fn materialised_upgrade_ignores_the_disk_tier() {
        // A disk-restored entry has no dataset; stats/mask must still
        // get one (via a scan), not loop on restore.
        let dir = unique_dir("upgrade-disk");
        let path = fixture_csv("updisk.csv", 300);
        let config = RegistryConfig {
            cache_dir: Some(dir.clone()),
            wal_max_bytes: 0,
            ..RegistryConfig::default()
        };
        let first = Registry::with_config(config.clone());
        let (_, _) = first.get_or_load(&dsref(&path), LoadMode::Stream);
        drop(first);
        let second = Registry::with_config(config);
        // The stream lookup restores the sample-only entry from disk…
        let (restored, _) = second.get_or_load(&dsref(&path), LoadMode::Stream);
        assert!(restored.unwrap().dataset.is_none());
        assert_eq!(second.disk_hits(), 1, "the sample-only restore");
        // …and materialising it pays a scan rather than looping on
        // the restore.
        let (entry, _) = second.get_or_load_materialised(&dsref(&path));
        assert!(entry.unwrap().dataset.is_some());
        assert_eq!(second.misses(), 1, "the materialising scan");
    }

    #[test]
    fn memory_mode_loads_bypass_the_disk_tier() {
        // An explicit memory-mode load exists to pre-materialise; the
        // sample-only disk tier must not silently downgrade it.
        let dir = unique_dir("memory-disk");
        let path = fixture_csv("memdisk.csv", 300);
        let config = RegistryConfig {
            cache_dir: Some(dir.clone()),
            wal_max_bytes: 0,
            ..RegistryConfig::default()
        };
        let first = Registry::with_config(config.clone());
        let (_, _) = first.get_or_load(&dsref(&path), LoadMode::Stream);
        drop(first);
        let second = Registry::with_config(config);
        let (entry, hit) = second.get_or_load(&dsref(&path), LoadMode::Memory);
        assert!(!hit);
        assert!(entry.unwrap().dataset.is_some(), "memory load materialises");
        assert_eq!(second.disk_hits(), 0, "restore skipped for memory mode");
        assert_eq!(second.misses(), 1);
    }

    #[test]
    fn registry_creation_sweeps_only_old_tmp_files() {
        let dir = unique_dir("sweep");
        let orphan = dir.join("deadbeef.sample.123-0.tmp");
        std::fs::write(&orphan, b"partial").unwrap();
        // Backdate the orphan past the sweep age; leave a fresh tmp
        // (a live sibling's in-flight persist) alone.
        let backdated = std::time::SystemTime::now() - 2 * TMP_SWEEP_MIN_AGE;
        std::fs::File::options()
            .write(true)
            .open(&orphan)
            .unwrap()
            .set_modified(backdated)
            .unwrap();
        let in_flight = dir.join("cafebabe.sample.456-0.tmp");
        std::fs::write(&in_flight, b"mid-write").unwrap();
        let keeper = dir.join("deadbeef.sample.csv");
        std::fs::write(&keeper, b"id\n1\n2\n").unwrap();
        let _ = Registry::with_config(RegistryConfig {
            cache_dir: Some(dir.clone()),
            ..RegistryConfig::default()
        });
        assert!(!orphan.exists(), "old orphaned tmp files are swept");
        assert!(in_flight.exists(), "fresh tmp files are left alone");
        assert!(keeper.exists(), "published files are untouched");
    }

    #[test]
    fn snapshot_rolls_everything_up() {
        let path = fixture_csv("snap.csv", 300);
        let reg = Registry::new();
        let (_, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        let (_, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        let snap = reg.snapshot();
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.datasets, 1);
        assert!(snap.resident_bytes > 0);
        assert_eq!(
            snap.evictions + snap.stale_rebuilds + snap.disk_hits + snap.upgrades,
            0
        );
    }

    #[test]
    fn stream_entries_carry_column_sketches() {
        let path = fixture_csv("cols.csv", 300);
        let reg = Registry::new();
        let (entry, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        let entry = entry.unwrap();
        let cols = &entry.cols;
        assert_eq!(cols.len(), 2);
        // id: 300 distinct (over k=256, an estimate); parity: exactly 2.
        assert!(!cols[0].is_exact());
        let id_est = cols[0].estimate() as f64;
        assert!(
            (id_est - 300.0).abs() / 300.0 < 0.25,
            "id estimate {id_est} vs 300"
        );
        assert!(cols[1].is_exact());
        assert_eq!(cols[1].estimate(), 2);
    }

    #[test]
    fn memory_and_stream_builds_agree_on_column_sketches() {
        // The dictionary-fed path (memory) and the tee-fed path
        // (stream) must produce byte-identical sketch state: KMV only
        // depends on the distinct value set.
        let path = fixture_csv("cols-agree.csv", 300);
        let reg = Registry::new();
        let (mem, _) = reg.get_or_load(&dsref(&path), LoadMode::Memory);
        let other = Registry::new();
        let (stream, _) = other.get_or_load(&dsref(&path), LoadMode::Stream);
        assert_eq!(mem.unwrap().cols, stream.unwrap().cols);
    }

    #[test]
    fn concurrent_sketch_queries_share_one_build() {
        // Mirrors concurrent_cold_lookups_share_one_build for the
        // second cached artifact: N racing sketch queries on an entry
        // without a sketch cause exactly one pair-sample scan.
        let path = fixture_csv("sketch-race.csv", 400);
        let reg = Arc::new(Registry::new());
        let ds = dsref(&path);
        let (entry, _) = reg.get_or_load(&ds, LoadMode::Stream);
        let entry = entry.unwrap();
        assert_eq!(reg.misses(), 1, "the sample build");
        let sketches: Vec<Arc<NonSeparationSketch>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    let ds = ds.clone();
                    let entry = Arc::clone(&entry);
                    scope.spawn(move || reg.sketch_for(&ds, &entry).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for sk in &sketches[1..] {
            assert!(Arc::ptr_eq(&sketches[0], sk), "one sketch for everyone");
        }
        assert_eq!(reg.misses(), 2, "sample build + exactly one sketch scan");
        // The sketch participates in the byte accounting, together
        // with the pair-sample tuples retained for append absorption.
        let pair_bytes = entry
            .pair_ingest
            .get()
            .map_or(0, PairIngest::retained_bytes);
        assert!(pair_bytes > 0, "the pair state rides along with the sketch");
        assert_eq!(
            reg.snapshot().resident_bytes,
            (entry.stored_bytes + sketches[0].stored_bytes() + pair_bytes) as u64
        );
    }

    #[test]
    fn sketch_is_identical_however_the_entry_is_resident() {
        // Stream entry (sketch from a source re-scan) and memory entry
        // (sketch from the resident dataset) must answer identically:
        // one canonical definition, the streaming builder.
        let path = fixture_csv("sketch-modes.csv", 400);
        let ds = dsref(&path);
        let stream_reg = Registry::new();
        let (se, _) = stream_reg.get_or_load(&ds, LoadMode::Stream);
        let stream_sketch = stream_reg.sketch_for(&ds, &se.unwrap()).unwrap();
        let mem_reg = Registry::new();
        let (me, _) = mem_reg.get_or_load(&ds, LoadMode::Memory);
        let mem_sketch = mem_reg.sketch_for(&ds, &me.unwrap()).unwrap();
        assert_eq!(mem_reg.misses(), 1, "a resident dataset needs no re-scan");
        let attrs = [vec![AttrId::new(0)], vec![AttrId::new(1)], vec![]];
        for a in &attrs {
            assert_eq!(stream_sketch.raw_count(a), mem_sketch.raw_count(a));
            assert_eq!(stream_sketch.query(a), mem_sketch.query(a));
        }
        assert_eq!(stream_sketch.sample_size(), mem_sketch.sample_size());
    }

    #[test]
    fn sketch_persists_and_restores_without_a_scan() {
        let dir = unique_dir("sketch-persist");
        let path = fixture_csv("sketch-warm.csv", 400);
        let ds = dsref(&path);
        let config = RegistryConfig {
            cache_dir: Some(dir.clone()),
            wal_max_bytes: 0,
            ..RegistryConfig::default()
        };
        let first = Registry::with_config(config.clone());
        let (entry, _) = first.get_or_load(&ds, LoadMode::Stream);
        let built = first.sketch_for(&ds, &entry.unwrap()).unwrap();
        assert_eq!(first.misses(), 2);
        drop(first);

        let second = Registry::with_config(config);
        let (entry, _) = second.get_or_load(&ds, LoadMode::Stream);
        let entry = entry.unwrap();
        assert_eq!(second.disk_hits(), 1, "the sample restore");
        let restored = second.sketch_for(&ds, &entry).unwrap();
        assert_eq!(second.disk_hits(), 2, "the pair-sample restore");
        assert_eq!(second.misses(), 0, "no source scan anywhere");
        for a in [vec![AttrId::new(0)], vec![AttrId::new(1)]] {
            assert_eq!(restored.raw_count(&a), built.raw_count(&a));
            assert_eq!(restored.query(&a), built.query(&a));
        }
        // The restored entry still answers stats (cols survived too).
        assert_eq!(entry.cols.len(), 2);
    }

    #[test]
    fn stale_source_invalidates_the_persisted_sketch() {
        let dir = unique_dir("sketch-stale");
        let path = dir.join("mut.csv");
        write_fixture(&path, 300, 0);
        let ds = dsref(path.to_str().unwrap());
        let config = RegistryConfig {
            cache_dir: Some(dir.clone()),
            wal_max_bytes: 0,
            ..RegistryConfig::default()
        };
        let first = Registry::with_config(config.clone());
        let (entry, _) = first.get_or_load(&ds, LoadMode::Stream);
        let _ = first.sketch_for(&ds, &entry.unwrap()).unwrap();
        drop(first);

        write_fixture(&path, 500, 9);
        let second = Registry::with_config(config);
        let (entry, _) = second.get_or_load(&ds, LoadMode::Stream);
        let entry = entry.unwrap();
        assert_eq!(entry.rows, 500);
        let sketch = second.sketch_for(&ds, &entry).unwrap();
        // The stale pairs file must not be adopted: the sketch scans
        // the new source instead (entry scan + sketch scan).
        assert_eq!(second.disk_hits(), 0);
        assert_eq!(second.misses(), 2);
        assert_eq!(sketch.source_pairs(), 500 * 499 / 2);
    }

    #[test]
    fn unload_releases_sketch_bytes_and_pair_files() {
        let dir = unique_dir("sketch-unload");
        let path = fixture_csv("sketch-gone.csv", 300);
        let ds = dsref(&path);
        let config = RegistryConfig {
            cache_dir: Some(dir.clone()),
            ..RegistryConfig::default()
        };
        let reg = Registry::with_config(config);
        let (entry, _) = reg.get_or_load(&ds, LoadMode::Stream);
        let entry = entry.unwrap();
        let sketch = reg.sketch_for(&ds, &entry).unwrap();
        assert!(sketch.stored_bytes() > 0);
        let key = CacheKey::of(&ds);
        assert!(pairs_path(&dir, &key).exists());
        assert!(pairs_meta_path(&dir, &key).exists());
        assert!(reg.unload(&ds));
        assert_eq!(reg.snapshot().resident_bytes, 0, "sketch bytes released");
        assert!(!pairs_path(&dir, &key).exists());
        assert!(!pairs_meta_path(&dir, &key).exists());
    }

    #[test]
    fn materialisation_upgrades_are_counted() {
        let path = fixture_csv("upgrade-count.csv", 300);
        let reg = Registry::new();
        let (_, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        assert_eq!(reg.snapshot().upgrades, 0);
        let (entry, _) = reg.get_or_load_materialised(&dsref(&path));
        assert!(entry.unwrap().dataset.is_some());
        let snap = reg.snapshot();
        assert_eq!(snap.upgrades, 1);
        assert_eq!(snap.misses, 2, "the upgrade is also a miss");
        // A second materialised lookup is a hit, not another upgrade.
        let (_, hit) = reg.get_or_load_materialised(&dsref(&path));
        assert!(hit);
        assert_eq!(reg.snapshot().upgrades, 1);
    }

    #[test]
    fn sketch_build_failure_is_an_error_not_a_panic() {
        // Entry resident, but the source vanishes before the sketch
        // scan: the error is cached on the entry (and clears with it).
        let dir = unique_dir("sketch-fail");
        let path = dir.join("vanish.csv");
        write_fixture(&path, 300, 0);
        let ds = dsref(path.to_str().unwrap());
        let reg = Registry::new();
        let (entry, _) = reg.get_or_load(&ds, LoadMode::Stream);
        let entry = entry.unwrap();
        std::fs::remove_file(&path).unwrap();
        let err = reg.sketch_for(&ds, &entry).unwrap_err();
        assert!(err.contains("vanish.csv"), "{err}");
        // Still an error on retry (the cell is written once)…
        assert!(reg.sketch_for(&ds, &entry).is_err());
        // …and no bytes were charged for it.
        assert_eq!(reg.snapshot().resident_bytes, entry.stored_bytes as u64);
    }

    // ------------------------------------ append + revalidation suite

    fn append_rows(path: &str, start: usize, rows: usize, salt: u64) {
        let mut f = std::fs::File::options().append(true).open(path).unwrap();
        for i in start..start + rows {
            writeln!(f, "{},{}", i as u64 + salt * 1_000_000, i % 2).unwrap();
        }
    }

    fn sample_rows(ds: &Dataset) -> Vec<Vec<Value>> {
        (0..ds.n_rows())
            .map(|row| {
                (0..ds.n_attrs())
                    .map(|a| ds.value(row, AttrId::new(a)).clone())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn same_length_same_mtime_rewrite_is_caught_by_fingerprint() {
        let path = fixture_csv("inplace.csv", 300);
        let reg = Registry::new();
        reg.get_or_load(&dsref(&path), LoadMode::Stream).0.unwrap();

        // Rewrite one byte in place — same length — then pin the mtime
        // back to the build-time value, so the change lands entirely
        // inside the filesystem's timestamp resolution. This is the
        // exact false-negative family a stat-only check misses.
        let mtime = std::fs::metadata(&path).unwrap().modified().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let target = bytes.iter().position(|&b| b == b'0').unwrap();
        bytes[target] = b'9';
        std::fs::write(&path, &bytes).unwrap();
        let f = std::fs::File::options().write(true).open(&path).unwrap();
        f.set_modified(mtime).unwrap();
        drop(f);
        assert_eq!(
            std::fs::metadata(&path).unwrap().modified().unwrap(),
            mtime,
            "fixture drifted: the rewrite must not move the mtime"
        );

        reg.get_or_load(&dsref(&path), LoadMode::Stream).0.unwrap();
        assert_eq!(
            reg.snapshot().stale_rebuilds,
            1,
            "the content fingerprint must catch a same-stat rewrite"
        );
        assert_eq!(reg.append_updates(), 0);
    }

    #[test]
    fn rewrite_beyond_the_prefix_plus_growth_rebuilds_not_absorbs() {
        // A re-exported CSV that updates old rows *and* adds new ones
        // must never be absorbed as an append: the whole-content FNV
        // gate on the grown path has to catch a rewrite landing beyond
        // the 64 KiB fingerprint prefix.
        let path = fixture_csv("deep-rewrite.csv", 12_000);
        let old_len = std::fs::metadata(&path).unwrap().len();
        assert!(
            old_len > FINGERPRINT_PREFIX + 16,
            "fixture drifted: old content must extend past the prefix"
        );
        let reg = Registry::new();
        let (entry, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        assert_eq!(entry.unwrap().rows, 12_000);

        // Flip one parity digit on the final line — far beyond the
        // prefix — then append genuinely new rows.
        let mut bytes = std::fs::read(&path).unwrap();
        let target = bytes.len() - 2;
        assert!(target as u64 > FINGERPRINT_PREFIX);
        assert_eq!(bytes[target], b'1', "fixture drifted: last parity");
        bytes[target] = b'9';
        std::fs::write(&path, &bytes).unwrap();
        append_rows(&path, 12_000, 300, 0);

        let (rebuilt, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        assert_eq!(rebuilt.unwrap().rows, 12_300);
        assert_eq!(
            reg.snapshot().stale_rebuilds,
            1,
            "a beyond-prefix rewrite + growth is stale, not an append"
        );
        assert_eq!(
            reg.append_updates(),
            0,
            "absorbing here would serve a stale sample"
        );
    }

    #[test]
    fn a_settled_stat_is_trusted_without_rereading_content() {
        // The racy-stat discipline: once a stamp's capture time lies
        // beyond the mtime race window, an unchanged stat alone proves
        // freshness and warm hits never re-read the file. The flip
        // side — asserted here on purpose — is that a rewrite which
        // *forges* the mtime back from outside that window is served
        // stale; catching it would cost a content read on every warm
        // hit, which is exactly what REVIEW flagged. (Inside the
        // window the fingerprint does catch it — see
        // same_length_same_mtime_rewrite_is_caught_by_fingerprint.)
        let path = fixture_csv("settled.csv", 300);
        let backdated = std::time::SystemTime::now() - std::time::Duration::from_secs(10);
        let f = std::fs::File::options().write(true).open(&path).unwrap();
        f.set_modified(backdated).unwrap();
        drop(f);

        let reg = Registry::new();
        reg.get_or_load(&dsref(&path), LoadMode::Stream).0.unwrap();

        let mut bytes = std::fs::read(&path).unwrap();
        let target = bytes.iter().position(|&b| b == b'0').unwrap();
        bytes[target] = b'9';
        std::fs::write(&path, &bytes).unwrap();
        let f = std::fs::File::options().write(true).open(&path).unwrap();
        f.set_modified(backdated).unwrap();
        drop(f);

        let (_, hit) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        assert!(hit, "an unchanged non-racy stat is trusted as-is");
        assert_eq!(reg.hits(), 1);
        assert_eq!(reg.snapshot().stale_rebuilds, 0);
    }

    #[test]
    fn truncated_source_triggers_full_rebuild() {
        let path = fixture_csv("truncate.csv", 300);
        let reg = Registry::new();
        let (entry, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        assert_eq!(entry.unwrap().rows, 300);
        // Same prefix, fewer rows: shrinkage can never be an append.
        write_fixture(Path::new(&path), 200, 0);
        let (entry, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        assert_eq!(entry.unwrap().rows, 200);
        assert_eq!(reg.snapshot().stale_rebuilds, 1);
        assert_eq!(reg.append_updates(), 0);
    }

    #[test]
    fn pure_append_is_absorbed_and_bit_identical_to_a_cold_rebuild() {
        let path = fixture_csv("append.csv", 400);
        let reg = Registry::new();
        let (entry, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        assert_eq!(entry.unwrap().rows, 400);

        append_rows(&path, 400, 300, 0);
        let (absorbed, hit) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        let absorbed = absorbed.unwrap();
        assert!(hit, "the absorbing lookup is a hit, not a rebuild");
        assert_eq!(absorbed.rows, 700);
        assert_eq!(reg.append_updates(), 1);
        assert_eq!(reg.snapshot().stale_rebuilds, 0);
        assert_eq!(reg.misses(), 1, "only the cold build scanned the file");

        // The absorbed entry must be indistinguishable from a cold
        // rebuild over the grown file: the resumed reservoir makes the
        // same accept/evict decisions the one-pass build would have,
        // so the sample, the column sketches, and therefore every
        // query answer are bit-identical — not merely statistically
        // equivalent.
        let cold_reg = Registry::new();
        let (cold, _) = cold_reg.get_or_load(&dsref(&path), LoadMode::Stream);
        let cold = cold.unwrap();
        assert_eq!(
            sample_rows(absorbed.filter.sample()),
            sample_rows(cold.filter.sample())
        );
        assert_eq!(absorbed.cols, cold.cols);
        assert_eq!(absorbed.rows, cold.rows);
        assert_eq!(absorbed.attrs, cold.attrs);
    }

    #[test]
    fn append_advances_the_sketch_without_a_rescan() {
        let path = fixture_csv("append-sketch.csv", 400);
        let reg = Registry::new();
        let ds = dsref(&path);
        let (entry, _) = reg.get_or_load(&ds, LoadMode::Stream);
        // Build the pair sketch in-process so its paused reservoirs are
        // parked on the entry, ready to resume over the suffix.
        reg.sketch_for(&ds, &entry.unwrap()).unwrap();

        append_rows(&path, 400, 300, 0);
        let (absorbed, _) = reg.get_or_load(&ds, LoadMode::Stream);
        let absorbed = absorbed.unwrap();
        let sketch = absorbed
            .sketch()
            .expect("absorb advances the parked pair build eagerly");

        let cold_reg = Registry::new();
        let (cold_entry, _) = cold_reg.get_or_load(&ds, LoadMode::Stream);
        let cold = cold_reg.sketch_for(&ds, &cold_entry.unwrap()).unwrap();
        assert_eq!(sketch.source_pairs(), cold.source_pairs());
        assert_eq!(sample_rows(sketch.pairs()), sample_rows(cold.pairs()));
    }

    #[test]
    fn append_completing_a_partial_final_line_rebuilds() {
        let dir = unique_dir("partial");
        let path = dir.join("partial.csv");
        std::fs::write(&path, "id,parity\n1,1\n2,0\n3,1").unwrap();
        let path = path.to_str().unwrap().to_string();
        let reg = Registry::new();
        let (entry, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        assert_eq!(entry.unwrap().rows, 3);

        // The growth first *completes* the unterminated final row
        // (changing a row the sample may already hold), then adds a
        // new one: only a full rebuild is sound.
        let mut f = std::fs::File::options().append(true).open(&path).unwrap();
        write!(f, "7\n4,0\n").unwrap();
        drop(f);
        let (entry, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        assert_eq!(entry.unwrap().rows, 4);
        assert_eq!(reg.append_updates(), 0, "a straddled row must not absorb");
        assert_eq!(reg.snapshot().stale_rebuilds, 1);
    }

    #[test]
    fn absorb_fallback_counts_the_lookup_exactly_once() {
        // When classification says Appended but the absorb itself
        // fails (here: the appended row widens the schema), the lookup
        // falls back to a full scan and is counted as that miss — not
        // as a hit *and* a miss, which would push hits + misses past
        // the number of lookups and skew hit-rate metrics.
        let path = fixture_csv("fallback.csv", 300);
        let reg = Registry::new();
        reg.get_or_load(&dsref(&path), LoadMode::Stream).0.unwrap();
        assert_eq!((reg.hits(), reg.misses()), (0, 1));

        let mut f = std::fs::File::options().append(true).open(&path).unwrap();
        writeln!(f, "300,0,9").unwrap();
        drop(f);

        let (result, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        assert!(result.is_err(), "the widened row fails the full scan too");
        assert_eq!(reg.append_updates(), 0);
        let lookups = 2;
        assert_eq!(
            reg.hits() + reg.misses(),
            lookups,
            "the fallback lookup is one miss, never also a hit"
        );
        assert_eq!((reg.hits(), reg.misses()), (0, 2));
    }

    #[test]
    fn sweep_absorbs_appends_ahead_of_traffic() {
        let path = fixture_csv("sweep.csv", 300);
        let reg = Registry::with_config(RegistryConfig {
            revalidate_ms: 60_000,
            ..RegistryConfig::default()
        });
        let ds = dsref(&path);
        reg.get_or_load(&ds, LoadMode::Stream).0.unwrap();
        let hits_before = reg.hits();

        assert_eq!(reg.sweep(), 0, "a fresh entry needs no refresh");
        assert_eq!(reg.sweep_refreshes(), 0);

        append_rows(&path, 300, 200, 0);
        assert_eq!(reg.sweep(), 1);
        assert_eq!(reg.sweep_refreshes(), 1);
        assert_eq!(reg.append_updates(), 1);
        assert_eq!(reg.hits(), hits_before, "the sweeper is not a lookup");
        assert_eq!(reg.misses(), 1, "the suffix absorb is not a scan");

        // The refresh re-opened the revalidation window, so the
        // zero-alloc fast path serves the absorbed entry immediately.
        let peeked = reg
            .peek(&CacheKey::of(&ds))
            .expect("sweep keeps the peek window open");
        assert_eq!(peeked.rows, 500);
    }

    #[test]
    fn sweeper_racing_a_foreground_rebuild_shares_one_scan() {
        let path = fixture_csv("race.csv", 300);
        let reg = Arc::new(Registry::new());
        let ds = dsref(&path);
        reg.get_or_load(&ds, LoadMode::Stream).0.unwrap();
        // Rewritten (prefix changed): stale however you look at it.
        write_fixture(Path::new(&path), 300, 9);

        let sweeper = {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || reg.sweep())
        };
        let (entry, _) = reg.get_or_load(&ds, LoadMode::Stream);
        entry.unwrap();
        sweeper.join().unwrap();

        // However the race lands — sweeper first, foreground first, or
        // truly interleaved — the swap-then-build-once discipline
        // admits exactly one rebuild scan and counts it exactly once.
        assert_eq!(reg.misses(), 2, "cold build + exactly one rebuild scan");
        assert_eq!(reg.snapshot().stale_rebuilds, 1, "one swap, ever");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn append_does_not_disturb_an_in_flight_audit() {
        let path = fixture_csv("inflight.csv", 300);
        let reg = Registry::new();
        let ds = dsref(&path);
        let (audit_entry, _) = reg.get_or_load(&ds, LoadMode::Stream);
        let audit_entry = audit_entry.unwrap(); // held across the append
        let before = sample_rows(audit_entry.filter.sample());

        append_rows(&path, 300, 100, 0);
        let (absorbed, _) = reg.get_or_load(&ds, LoadMode::Stream);
        let absorbed = absorbed.unwrap();

        assert!(
            !Arc::ptr_eq(&audit_entry, &absorbed),
            "absorb publishes a new entry instead of mutating the old"
        );
        assert_eq!(audit_entry.rows, 300, "the in-flight view is immutable");
        assert_eq!(sample_rows(audit_entry.filter.sample()), before);
        assert_eq!(absorbed.rows, 400);
    }

    #[test]
    fn v1_metas_are_rejected_and_stats_does_not_materialise() {
        let dir = unique_dir("v1-meta");
        let path = fixture_csv("v1.csv", 300);
        let ds = dsref(&path);
        {
            let reg = Registry::with_config(RegistryConfig {
                cache_dir: Some(dir.clone()),
                wal_max_bytes: 0,
                ..RegistryConfig::default()
            });
            reg.get_or_load(&ds, LoadMode::Stream).0.unwrap();
        }
        // Downgrade the persisted meta to the pre-append v1 marker: a
        // v1 meta has no column sketches and no fingerprint, so
        // restoring it would resurrect the silent-materialise path.
        let meta_path = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|d| d.path())
            .find(|p| p.to_str().is_some_and(|s| s.ends_with(".meta.json")))
            .expect("meta persisted");
        let text = std::fs::read_to_string(&meta_path).unwrap();
        let downgraded = text.replacen("\"version\":3", "\"version\":1", 1);
        assert_ne!(text, downgraded, "fixture drifted: no version field");
        std::fs::write(&meta_path, downgraded).unwrap();

        let reg = Registry::with_config(RegistryConfig {
            cache_dir: Some(dir),
            wal_max_bytes: 0,
            ..RegistryConfig::default()
        });
        let (entry, _) = reg.get_or_load(&ds, LoadMode::Stream);
        let entry = entry.unwrap();
        assert_eq!(reg.disk_hits(), 0, "a v1 meta must not restore");
        assert_eq!(reg.misses(), 1, "rejected restore falls back to a scan");
        assert_eq!(reg.snapshot().upgrades, 0);
        assert!(
            entry.dataset.is_none(),
            "stats on a stream entry must not silently materialise"
        );
        assert_eq!(entry.cols.len(), 2, "stats answers from column sketches");
    }

    #[test]
    fn disk_budget_evicts_oldest_artifact_groups() {
        let dir = unique_dir("disk-gc");
        let path_a = fixture_csv("gc-a.csv", 300);
        let path_b = fixture_csv("gc-b.csv", 300);
        let path_c = fixture_csv("gc-c.csv", 300);
        let stem_of = |path: &str| format!("{:016x}", CacheKey::of(&dsref(path)).fnv64());
        let group_bytes = |dir: &Path, stem: &str| -> u64 {
            std::fs::read_dir(dir)
                .unwrap()
                .flatten()
                .filter(|d| {
                    d.file_name()
                        .to_str()
                        .and_then(artifact_stem)
                        .is_some_and(|s| s == stem)
                })
                .map(|d| d.metadata().unwrap().len())
                .sum()
        };

        // Measure one persisted group, then budget for two and a half:
        // the third build must garbage-collect the oldest group.
        // Journal off: this pins the mtime-fallback victim ordering
        // (used whenever the journal has no last-access evidence);
        // journal-ordered GC has its own test.
        {
            let reg = Registry::with_config(RegistryConfig {
                cache_dir: Some(dir.clone()),
                wal_max_bytes: 0,
                ..RegistryConfig::default()
            });
            reg.get_or_load(&dsref(&path_a), LoadMode::Stream)
                .0
                .unwrap();
        }
        let group = group_bytes(&dir, &stem_of(&path_a));
        assert!(group > 0, "build must persist");

        let reg = Registry::with_config(RegistryConfig {
            cache_dir: Some(dir.clone()),
            cache_disk_bytes: Some(group * 5 / 2),
            wal_max_bytes: 0,
            ..RegistryConfig::default()
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        reg.get_or_load(&dsref(&path_b), LoadMode::Stream)
            .0
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        reg.get_or_load(&dsref(&path_c), LoadMode::Stream)
            .0
            .unwrap();

        assert_eq!(
            group_bytes(&dir, &stem_of(&path_a)),
            0,
            "oldest group garbage-collected"
        );
        assert!(group_bytes(&dir, &stem_of(&path_b)) > 0, "b survives");
        assert!(
            group_bytes(&dir, &stem_of(&path_c)) > 0,
            "the just-persisted group is protected"
        );
        // The resident tier is untouched by disk GC.
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn unload_all_purges_orphaned_artifacts_from_prior_processes() {
        let dir = unique_dir("orphans");
        let path = fixture_csv("orphan.csv", 300);
        {
            let reg = Registry::with_config(RegistryConfig {
                cache_dir: Some(dir.clone()),
                wal_max_bytes: 0,
                ..RegistryConfig::default()
            });
            reg.get_or_load(&dsref(&path), LoadMode::Stream).0.unwrap();
        } // "restart": artifacts on disk, nothing resident
        let reg = Registry::with_config(RegistryConfig {
            cache_dir: Some(dir.clone()),
            wal_max_bytes: 0,
            ..RegistryConfig::default()
        });
        assert!(reg.is_empty());
        let removed = reg.unload_all();
        assert_eq!(removed, 2, "orphaned meta + sample purged");
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|d| d.file_name().to_str().is_some_and(is_cache_artifact))
            .count();
        assert_eq!(leftovers, 0);
    }

    #[test]
    fn absorbed_append_persists_and_restores_without_a_scan() {
        let dir = unique_dir("append-persist");
        let path = fixture_csv("append-persist.csv", 300);
        let ds = dsref(&path);
        {
            let reg = Registry::with_config(RegistryConfig {
                cache_dir: Some(dir.clone()),
                wal_max_bytes: 0,
                ..RegistryConfig::default()
            });
            reg.get_or_load(&ds, LoadMode::Stream).0.unwrap();
            append_rows(&path, 300, 200, 0);
            let (absorbed, _) = reg.get_or_load(&ds, LoadMode::Stream);
            assert_eq!(absorbed.unwrap().rows, 500);
            assert_eq!(reg.append_updates(), 1);
        }
        // A fresh process restores the *absorbed* state — stamp, rows,
        // and resumable ingest — so the next append still absorbs.
        let reg = Registry::with_config(RegistryConfig {
            cache_dir: Some(dir),
            wal_max_bytes: 0,
            ..RegistryConfig::default()
        });
        let (restored, _) = reg.get_or_load(&ds, LoadMode::Stream);
        let restored = restored.unwrap();
        assert_eq!(reg.disk_hits(), 1, "restored, not re-scanned");
        assert_eq!(restored.rows, 500);
        assert!(restored.append_capable(), "restore resumes ingest state");
        append_rows(&path, 500, 100, 0);
        let (again, _) = reg.get_or_load(&ds, LoadMode::Stream);
        assert_eq!(again.unwrap().rows, 600);
        assert_eq!(reg.append_updates(), 1, "post-restore appends absorb");
        assert_eq!(reg.snapshot().stale_rebuilds, 0);
    }

    // ------------------------------------- journal + recovery suite

    #[test]
    fn warm_restart_readmits_the_resident_set_and_resumes_counters() {
        let dir = unique_dir("wal-warm");
        let path_a = fixture_csv("wal-a.csv", 300);
        let path_b = fixture_csv("wal-b.csv", 400);
        let config = RegistryConfig {
            cache_dir: Some(dir.clone()),
            ..RegistryConfig::default()
        };
        let first = Registry::with_config(config.clone());
        assert_eq!(first.restarts(), 0, "first boot");
        first
            .get_or_load(&dsref(&path_a), LoadMode::Stream)
            .0
            .unwrap();
        first
            .get_or_load(&dsref(&path_b), LoadMode::Stream)
            .0
            .unwrap();
        first
            .get_or_load(&dsref(&path_a), LoadMode::Stream)
            .0
            .unwrap();
        assert_eq!((first.hits(), first.misses()), (1, 2));
        drop(first); // clean shutdown: counters land in the journal

        let second = Registry::with_config(config);
        // Both keys were eagerly re-admitted during construction…
        assert_eq!(second.len(), 2, "resident set survives the restart");
        assert_eq!(second.restarts(), 1);
        assert!(second.wal_replayed_events() > 0);
        assert_eq!(second.disk_hits(), 2, "re-admission restores, never scans");
        // …and the cumulative counters resumed instead of resetting.
        assert_eq!(second.misses(), 2, "prior-life misses survive");
        assert_eq!(second.hits(), 1, "prior-life hits survive");
        // Replayed keys serve as plain hits: zero build misses.
        let (entry, hit) = second.get_or_load(&dsref(&path_a), LoadMode::Stream);
        assert!(hit, "a replayed key is already resident");
        assert_eq!(entry.unwrap().rows, 300);
        assert_eq!(second.misses(), 2, "no scan for a replayed key");
        let snap = second.snapshot();
        assert_eq!(snap.restarts, 1);
        assert_eq!(snap.wal_replayed_events, second.wal_replayed_events());
    }

    #[test]
    fn crash_recovery_resumes_counters_without_a_shutdown_record() {
        let dir = unique_dir("wal-crash");
        let path = fixture_csv("wal-crash.csv", 300);
        let config = RegistryConfig {
            cache_dir: Some(dir.clone()),
            ..RegistryConfig::default()
        };
        let first = Registry::with_config(config.clone());
        first
            .get_or_load(&dsref(&path), LoadMode::Stream)
            .0
            .unwrap();
        first.crash_for_test(); // kill -9: no shutdown record
        drop(first);

        let second = Registry::with_config(config);
        assert_eq!(second.restarts(), 1);
        assert_eq!(second.len(), 1, "the built key is re-admitted");
        assert_eq!(second.misses(), 1, "the journaled build survives the crash");
        assert_eq!(second.disk_hits(), 1, "the re-admission restore");
        let (_, hit) = second.get_or_load(&dsref(&path), LoadMode::Stream);
        assert!(hit);
    }

    #[test]
    fn crash_evidence_unlocks_the_tmp_sweep_and_clean_shutdown_does_not() {
        let dir = unique_dir("wal-tmp");
        let path = fixture_csv("wal-tmp.csv", 300);
        let config = RegistryConfig {
            cache_dir: Some(dir.clone()),
            ..RegistryConfig::default()
        };
        let first = Registry::with_config(config.clone());
        first
            .get_or_load(&dsref(&path), LoadMode::Stream)
            .0
            .unwrap();
        // A fresh in-flight tmp file, then a crash: nothing can still
        // be writing it, so the next boot reclaims it immediately.
        let orphan = dir.join("cafebabe00000001.sample.123-0.tmp");
        std::fs::write(&orphan, b"partial").unwrap();
        first.crash_for_test();
        drop(first);

        let second = Registry::with_config(config.clone());
        assert!(
            !orphan.exists(),
            "crash evidence reclaims fresh tmp files immediately"
        );
        // After a *clean* shutdown the age gate is back: a fresh tmp
        // could belong to a live sibling process and must survive.
        let in_flight = dir.join("cafebabe00000002.sample.456-0.tmp");
        std::fs::write(&in_flight, b"mid-write").unwrap();
        drop(second);
        let _third = Registry::with_config(config);
        assert!(
            in_flight.exists(),
            "a clean shutdown keeps the 1h age gate for tmp files"
        );
    }

    #[test]
    fn disk_gc_protects_journal_recent_keys_over_newer_mtimes() {
        let dir = unique_dir("wal-gc");
        let path_a = fixture_csv("wal-gc-a.csv", 300);
        let path_b = fixture_csv("wal-gc-b.csv", 300);
        let path_c = fixture_csv("wal-gc-c.csv", 300);
        let stem_of = |path: &str| format!("{:016x}", CacheKey::of(&dsref(path)).fnv64());
        let group_paths = |dir: &Path, stem: &str| -> Vec<PathBuf> {
            std::fs::read_dir(dir)
                .unwrap()
                .flatten()
                .filter(|d| {
                    d.file_name()
                        .to_str()
                        .and_then(artifact_stem)
                        .is_some_and(|s| s == stem)
                })
                .map(|d| d.path())
                .collect()
        };

        // Key A is journaled (built under the WAL, cleanly shut down).
        {
            let reg = Registry::with_config(RegistryConfig {
                cache_dir: Some(dir.clone()),
                ..RegistryConfig::default()
            });
            reg.get_or_load(&dsref(&path_a), LoadMode::Stream)
                .0
                .unwrap();
        }
        // Key B is journal-unknown: built with the journal off, so GC
        // has only its (newer) mtime to go on.
        {
            let reg = Registry::with_config(RegistryConfig {
                cache_dir: Some(dir.clone()),
                wal_max_bytes: 0,
                ..RegistryConfig::default()
            });
            reg.get_or_load(&dsref(&path_b), LoadMode::Stream)
                .0
                .unwrap();
        }
        let a_paths = group_paths(&dir, &stem_of(&path_a));
        assert!(!a_paths.is_empty(), "A persisted");
        let group: u64 = a_paths
            .iter()
            .map(|p| std::fs::metadata(p).unwrap().len())
            .sum();
        // Backdate A's artifacts: under mtime-ordered GC, A — the key a
        // client just restored — would be the first victim.
        let ancient = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1);
        for p in &a_paths {
            std::fs::File::options()
                .write(true)
                .open(p)
                .unwrap()
                .set_modified(ancient)
                .unwrap();
        }

        // Restart with the journal on and a budget for ~2.5 groups:
        // re-admission restores A (a journal access), then building C
        // pushes the dir over budget.
        let reg = Registry::with_config(RegistryConfig {
            cache_dir: Some(dir.clone()),
            cache_disk_bytes: Some(group * 5 / 2),
            ..RegistryConfig::default()
        });
        reg.get_or_load(&dsref(&path_c), LoadMode::Stream)
            .0
            .unwrap();

        assert!(
            !group_paths(&dir, &stem_of(&path_a)).is_empty(),
            "the just-restored key survives despite the oldest mtime"
        );
        assert!(
            group_paths(&dir, &stem_of(&path_b)).is_empty(),
            "the journal-unknown group is the eviction victim"
        );
        assert!(
            !group_paths(&dir, &stem_of(&path_c)).is_empty(),
            "the just-persisted group is protected"
        );
    }
}
