//! The dataset registry: `(path, eps, seed) → cached sketch`.
//!
//! The paper's economics are: building the `Θ(m/√ε)` tuple sample costs
//! a full scan, answering a query against it costs `O(|A|·r log r)`. So
//! the registry builds once and every subsequent `audit`/`key`/`check`
//! shares the resident [`TupleSampleFilter`]. Concurrent first requests
//! for the same key are collapsed onto one build via a per-entry
//! [`OnceLock`]: the loser blocks until the winner's artifacts are
//! ready, so two clients racing on a cold dataset still cause exactly
//! one CSV scan.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use qid_core::filter::{FilterParams, TupleSampleFilter};
use qid_core::stream::tuple_filter_from_stream;
use qid_dataset::csv::{read_csv_path, CsvOptions, CsvTupleSource};
use qid_dataset::{Dataset, TupleSource};

use crate::proto::{DatasetRef, LoadMode};

/// The registry's exact cache identity. `eps` is keyed by bit pattern
/// (the wire carries the same `f64` both ways, so equal requests hash
/// equal), and the path is canonicalised when possible so `./a.csv` and
/// `a.csv` share an entry.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonicalised dataset path.
    pub path: String,
    /// `eps.to_bits()`.
    pub eps_bits: u64,
    /// Sampling seed.
    pub seed: u64,
}

impl CacheKey {
    /// Builds the key for a request's dataset reference.
    pub fn of(ds: &DatasetRef) -> CacheKey {
        let path = std::fs::canonicalize(&ds.path)
            .ok()
            .and_then(|p| p.to_str().map(str::to_string))
            .unwrap_or_else(|| ds.path.clone());
        CacheKey {
            path,
            eps_bits: ds.eps.to_bits(),
            seed: ds.seed,
        }
    }
}

/// The artifacts cached for one dataset.
#[derive(Debug)]
pub struct Entry {
    /// The resident tuple-sample filter (always present).
    pub filter: TupleSampleFilter,
    /// The fully materialised dataset — `None` for stream-mode loads,
    /// where only the sample is kept.
    pub dataset: Option<Dataset>,
    /// Rows seen when the entry was built (stream length or `n_rows`).
    pub rows: usize,
    /// Attribute count.
    pub attrs: usize,
}

type Slot = Arc<OnceLock<Result<Arc<Entry>, String>>>;

/// The shared cache. All methods take `&self`; the registry is meant to
/// live in an `Arc` shared by every worker thread.
#[derive(Debug, Default)]
pub struct Registry {
    map: Mutex<HashMap<CacheKey, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached entry for `ds`, building it on first use.
    ///
    /// The boolean is `true` iff the slot already existed (a cache
    /// hit — possibly waiting on a concurrent build, which still means
    /// the scan was shared). Failed builds are evicted so a later
    /// request can retry (e.g. after the file appears).
    pub fn get_or_load(
        &self,
        ds: &DatasetRef,
        mode: LoadMode,
    ) -> (Result<Arc<Entry>, String>, bool) {
        let key = CacheKey::of(ds);
        let (slot, hit) = {
            let mut map = self.map.lock().expect("registry lock");
            match map.get(&key) {
                Some(slot) => (Arc::clone(slot), true),
                None => {
                    let slot: Slot = Arc::new(OnceLock::new());
                    map.insert(key.clone(), Arc::clone(&slot));
                    (slot, false)
                }
            }
        };
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let result = slot
            .get_or_init(|| build_entry(ds, mode).map(Arc::new))
            .clone();
        if result.is_err() {
            let mut map = self.map.lock().expect("registry lock");
            if map.get(&key).is_some_and(|cur| Arc::ptr_eq(cur, &slot)) {
                map.remove(&key);
            }
        }
        (result, hit)
    }

    /// Like [`Registry::get_or_load`] with [`LoadMode::Memory`], but
    /// additionally upgrades a stream-mode entry (sample only, no
    /// rows) to a fully materialised one — `stats` and `mask` need the
    /// whole dataset. Concurrent upgraders collapse onto one re-scan
    /// (the same way cold builds do): the first swaps a fresh slot
    /// into the map and builds, the rest wait on that slot. Only the
    /// builder is reclassified from hit to miss.
    pub fn get_or_load_materialised(&self, ds: &DatasetRef) -> (Result<Arc<Entry>, String>, bool) {
        let (result, hit) = self.get_or_load(ds, LoadMode::Memory);
        match result {
            Ok(entry) if entry.dataset.is_none() => {
                let key = CacheKey::of(ds);
                let (slot, we_swapped) = {
                    let mut map = self.map.lock().expect("registry lock");
                    let needs_swap = map.get(&key).is_none_or(|cur| {
                        // Swap only if the resident slot still holds
                        // the unusable stream entry (or a stale
                        // error); a pending or finished upgrade slot
                        // is reused as-is.
                        cur.get()
                            .is_some_and(|r| !r.as_ref().is_ok_and(|e| e.dataset.is_some()))
                    });
                    if needs_swap {
                        let fresh: Slot = Arc::new(OnceLock::new());
                        map.insert(key.clone(), Arc::clone(&fresh));
                        (fresh, true)
                    } else {
                        (Arc::clone(map.get(&key).expect("slot present")), false)
                    }
                };
                if we_swapped && hit {
                    // Reclassify: the cached entry was unusable and we
                    // are the one paying the re-scan.
                    self.hits.fetch_sub(1, Ordering::Relaxed);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
                let result = slot
                    .get_or_init(|| build_entry(ds, LoadMode::Memory).map(Arc::new))
                    .clone();
                if result.is_err() {
                    let mut map = self.map.lock().expect("registry lock");
                    if map.get(&key).is_some_and(|cur| Arc::ptr_eq(cur, &slot)) {
                        map.remove(&key);
                    }
                }
                (result, hit && !we_swapped)
            }
            other => (other, hit),
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.lock().expect("registry lock").len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

fn build_entry(ds: &DatasetRef, mode: LoadMode) -> Result<Entry, String> {
    if !(ds.eps > 0.0 && ds.eps < 1.0) {
        return Err(format!("eps must be in (0, 1), got {}", ds.eps));
    }
    let params = FilterParams::new(ds.eps);
    match mode {
        LoadMode::Memory => {
            let dataset = read_csv_path(&ds.path, &CsvOptions::default())
                .map_err(|e| format!("reading {}: {e}", ds.path))?;
            if dataset.n_rows() < 2 || dataset.n_attrs() == 0 {
                return Err(format!(
                    "data set too small to analyse ({} rows x {} attributes)",
                    dataset.n_rows(),
                    dataset.n_attrs()
                ));
            }
            let filter = TupleSampleFilter::build(&dataset, params, ds.seed);
            Ok(Entry {
                rows: dataset.n_rows(),
                attrs: dataset.n_attrs(),
                filter,
                dataset: Some(dataset),
            })
        }
        LoadMode::Stream => {
            let mut source = CsvTupleSource::open(&ds.path, &CsvOptions::default())
                .map_err(|e| format!("reading {}: {e}", ds.path))?;
            let filter = tuple_filter_from_stream(&mut source, params, ds.seed)
                .map_err(|e| format!("streaming {}: {e}", ds.path))?;
            let rows = source.rows_read();
            let attrs = source.n_attrs();
            if rows < 2 || attrs == 0 {
                return Err(format!(
                    "data set too small to analyse ({rows} rows x {attrs} attributes)"
                ));
            }
            Ok(Entry {
                rows,
                attrs,
                filter,
                dataset: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn fixture_csv(name: &str, rows: usize) -> String {
        let dir = std::env::temp_dir().join("qid-registry-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "id,parity").unwrap();
        for i in 0..rows {
            writeln!(f, "{i},{}", i % 2).unwrap();
        }
        path.to_str().unwrap().to_string()
    }

    fn dsref(path: &str) -> DatasetRef {
        DatasetRef {
            path: path.into(),
            eps: 0.01,
            seed: 7,
        }
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let path = fixture_csv("hit.csv", 300);
        let reg = Registry::new();
        let (first, hit1) = reg.get_or_load(&dsref(&path), LoadMode::Memory);
        let (second, hit2) = reg.get_or_load(&dsref(&path), LoadMode::Memory);
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&first.unwrap(), &second.unwrap()));
        assert_eq!(reg.hits(), 1);
        assert_eq!(reg.misses(), 1);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn different_seed_is_a_different_entry() {
        let path = fixture_csv("seeds.csv", 300);
        let reg = Registry::new();
        let (_, _) = reg.get_or_load(&dsref(&path), LoadMode::Memory);
        let mut other = dsref(&path);
        other.seed = 8;
        let (_, hit) = reg.get_or_load(&other, LoadMode::Memory);
        assert!(!hit);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn stream_mode_keeps_only_the_sample() {
        let path = fixture_csv("stream.csv", 500);
        let reg = Registry::new();
        let (entry, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        let entry = entry.unwrap();
        assert!(entry.dataset.is_none());
        assert_eq!(entry.rows, 500);
        assert_eq!(entry.attrs, 2);
        // m=2, eps=0.01 → 20 sampled tuples.
        assert_eq!(entry.filter.sample().n_rows(), 20);
    }

    #[test]
    fn failed_builds_are_evicted_and_retryable() {
        let reg = Registry::new();
        let missing = dsref("/definitely/not/here.csv");
        let (err, hit) = reg.get_or_load(&missing, LoadMode::Memory);
        assert!(err.is_err());
        assert!(!hit);
        assert_eq!(reg.len(), 0, "failed entry must not stay resident");
        // Retry is a fresh miss, not a cached error.
        let (err2, hit2) = reg.get_or_load(&missing, LoadMode::Memory);
        assert!(err2.is_err());
        assert!(!hit2);
    }

    #[test]
    fn concurrent_cold_lookups_share_one_build() {
        let path = fixture_csv("race.csv", 400);
        let reg = Arc::new(Registry::new());
        let entries: Vec<Arc<Entry>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    let ds = dsref(&path);
                    scope.spawn(move || reg.get_or_load(&ds, LoadMode::Memory).0.unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for e in &entries[1..] {
            assert!(Arc::ptr_eq(&entries[0], e), "all clients share one entry");
        }
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.hits() + reg.misses(), 4);
    }

    #[test]
    fn materialised_lookup_upgrades_stream_entries() {
        let path = fixture_csv("upgrade.csv", 300);
        let reg = Registry::new();
        let (entry, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream);
        assert!(entry.unwrap().dataset.is_none());
        let (upgraded, hit) = reg.get_or_load_materialised(&dsref(&path));
        assert!(!hit, "an upgrade re-scans, so it is not a hit");
        assert!(upgraded.unwrap().dataset.is_some());
        assert_eq!(reg.len(), 1);
        // The upgraded entry is now the cached one.
        let (again, hit) = reg.get_or_load_materialised(&dsref(&path));
        assert!(hit);
        assert!(again.unwrap().dataset.is_some());
        assert_eq!(reg.hits(), 1);
        assert_eq!(reg.misses(), 2);
    }

    #[test]
    fn concurrent_upgrades_share_one_rescan() {
        let path = fixture_csv("upgrade-race.csv", 400);
        let reg = Arc::new(Registry::new());
        let (entry, _) = reg.get_or_load(&dsref(&path), LoadMode::Stream); // 1 miss
        assert!(entry.unwrap().dataset.is_none());
        let entries: Vec<Arc<Entry>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    let ds = dsref(&path);
                    scope.spawn(move || reg.get_or_load_materialised(&ds).0.unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for e in &entries {
            assert!(e.dataset.is_some());
            assert!(
                Arc::ptr_eq(&entries[0], e),
                "all upgraders share one rebuilt entry"
            );
        }
        // Stream build + exactly one upgrade re-scan; the other three
        // upgraders waited on the same slot and count as hits.
        assert_eq!(reg.misses(), 2);
        assert_eq!(reg.hits(), 3);
    }

    #[test]
    fn bad_eps_is_an_error_not_a_panic() {
        let path = fixture_csv("eps.csv", 100);
        let reg = Registry::new();
        let mut ds = dsref(&path);
        ds.eps = 0.0;
        let (res, _) = reg.get_or_load(&ds, LoadMode::Memory);
        assert!(res.is_err());
    }
}
