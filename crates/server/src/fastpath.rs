//! The zero-allocation `check` fast path.
//!
//! The steady-state traffic of a separation-audit service is `check`:
//! the same client asking "is this attribute set still a candidate
//! key?" over the same cached dataset, thousands of times per second.
//! The general path pays for generality on every such line — a
//! [`crate::json::Json`] tree for the request, `String`s for the specs,
//! a [`crate::proto::Request`], a [`crate::proto::Response`], and a
//! rendered `String` for the answer. None of that is needed when the
//! request is plain and the entry is resident.
//!
//! `try_answer_check` recognises exactly that case and answers it
//! allocation-free:
//!
//! * a **byte-level scanner** walks the request line in place — string
//!   values become spans into the line, numbers are parsed from their
//!   token bytes, nothing is copied;
//! * the **cache key is memoised** in the per-connection [`Scratch`]
//!   (path canonicalisation allocates, so it is paid once per
//!   revalidation window, not per request);
//! * the entry comes from [`crate::registry::Registry::peek`], which
//!   serves without statting the source inside the configured
//!   revalidation window;
//! * attribute resolution and the filter query run in reusable scratch
//!   buffers ([`qid_core::filter::TupleSampleFilter::query_sorted_into`]);
//! * the response is serialised straight into the connection's write
//!   batch with `json::write_escaped_bytes`, byte-identical to
//!   what [`crate::proto::Response::encode`] would have produced.
//!
//! ## The bail contract
//!
//! The fast path never produces an error: anything it does not fully
//! recognise — an escape sequence, a duplicate or unknown key, a
//! string `seed`, an unknown attribute, a cold or stale cache entry —
//! makes it return `false` untouched, and the caller re-parses the
//! line on the general path, which remains the single authority for
//! error messages and edge-case semantics. A fast-path `true` must be
//! **observably identical** to what the general path would have sent;
//! the `fastpath_agrees_with_general_path` integration test pins this
//! byte-for-byte.
//!
//! New commands that want the same treatment must follow the same
//! rule: parse from the line bytes into [`Scratch`], answer only from
//! already-resident state, serialise with `write_escaped_bytes`, and
//! bail to the general path on anything unusual.

use std::time::{Duration, Instant};

use qid_core::filter::FilterDecision;
use qid_dataset::AttrId;

use crate::json::write_escaped_bytes;
use crate::proto::{DatasetRef, DEFAULT_EPS, DEFAULT_SEED};
use crate::registry::CacheKey;
use crate::server::ServerState;

/// The per-connection scratch arena: every buffer the fast path needs,
/// owned by the connection and reused across requests so the steady
/// state allocates nothing. Buffers are cleared, never shrunk.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Byte spans (into the request line) of the `attrs` array entries.
    attr_spans: Vec<(usize, usize)>,
    /// Resolved attribute ids, deduplicated, first-occurrence order.
    attrs: Vec<AttrId>,
    /// Dedup table, one flag per schema attribute.
    seen: Vec<bool>,
    /// Row-order permutation for the sort-based filter query.
    order: Vec<u32>,
    /// The memoised cache key (canonicalisation is the one allocating
    /// step, paid once per revalidation window).
    memo: Option<KeyMemo>,
    /// Span records for the requests served in the current poller
    /// wake, published to the trace ring by the wake epilogue
    /// ([`crate::server::ServerState::finish_wake`]). Fixed-size:
    /// filling it never allocates.
    pub(crate) spans: crate::obs::PendingSpans,
}

impl Scratch {
    /// An empty arena; buffers grow to their steady-state sizes over
    /// the first few requests and stay there.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// The FNV-1a hash of the memoised cache key — what the fast path
    /// stamps into its trace spans without recomputing (or allocating)
    /// anything. Zero when no key has been memoised yet.
    pub(crate) fn memo_key_hash(&self) -> u64 {
        self.memo.as_ref().map_or(0, |m| m.hash)
    }
}

/// One memoised `raw request fields → canonical cache key` mapping.
#[derive(Debug)]
struct KeyMemo {
    /// The raw (un-canonicalised) path bytes the key was computed from.
    raw_path: Vec<u8>,
    eps_bits: u64,
    seed: u64,
    key: CacheKey,
    /// `key.fnv64()`, precomputed so span capture costs one copy.
    hash: u64,
    /// When the key was computed; re-canonicalised after the registry's
    /// revalidation window so a retargeted path cannot stay bound to an
    /// old entry for longer than staleness is already tolerated.
    at: Instant,
}

/// What the scanner extracted from a recognised `check` line.
struct ParsedCheck {
    path: (usize, usize),
    eps: f64,
    seed: u64,
}

/// Answers a `check` request line allocation-free if — and only if —
/// the line is plain (no escapes, no unknown or duplicate fields), the
/// dataset entry is resident, and its freshness window is open.
/// Appends the response (plus newline) to `out` and records metrics,
/// exactly like the general path would have. Returns `false` with
/// `out` untouched in every other case; the caller falls back to the
/// general path.
pub(crate) fn try_answer_check(
    state: &ServerState,
    line: &str,
    scratch: &mut Scratch,
    out: &mut Vec<u8>,
) -> bool {
    let window = state.registry.revalidate_window_ms();
    if window == 0 {
        return false; // fast path disabled: strict stat-on-every-hit
    }
    let started = Instant::now();
    let bytes = line.as_bytes();
    scratch.attr_spans.clear();
    let Some(req) = parse_check(bytes, &mut scratch.attr_spans) else {
        return false;
    };
    let raw_path = &bytes[req.path.0..req.path.1];
    let eps_bits = req.eps.to_bits();
    let fresh = scratch.memo.as_ref().is_some_and(|m| {
        m.raw_path == raw_path
            && m.eps_bits == eps_bits
            && m.seed == req.seed
            && started.saturating_duration_since(m.at) < Duration::from_millis(window)
    });
    if !fresh {
        // The one allocating step, paid at most once per window per
        // connection: canonicalise the path into a cache key and
        // memoise it against the raw request fields.
        let Ok(path) = std::str::from_utf8(raw_path) else {
            return false; // unreachable: `line` is a &str
        };
        let key = CacheKey::of(&DatasetRef {
            path: path.to_string(),
            eps: req.eps,
            seed: req.seed,
        });
        let hash = key.fnv64();
        match &mut scratch.memo {
            Some(m) => {
                m.raw_path.clear();
                m.raw_path.extend_from_slice(raw_path);
                m.eps_bits = eps_bits;
                m.seed = req.seed;
                m.key = key;
                m.hash = hash;
                m.at = started;
            }
            memo @ None => {
                *memo = Some(KeyMemo {
                    raw_path: raw_path.to_vec(),
                    eps_bits,
                    seed: req.seed,
                    key,
                    hash,
                    at: started,
                });
            }
        }
    }
    let memo = scratch.memo.as_ref().expect("memo just refreshed");
    // Resident + freshness-checked within the window, or bail to the
    // general path (whose stat re-opens the window).
    let Some(entry) = state.registry.peek(&memo.key) else {
        return false;
    };
    let sample = entry.filter.sample();
    let schema = sample.schema();
    let n_attrs = sample.n_attrs();
    scratch.attrs.clear();
    scratch.seen.clear();
    scratch.seen.resize(n_attrs, false);
    for &(lo, hi) in &scratch.attr_spans {
        let Ok(spec) = std::str::from_utf8(&bytes[lo..hi]) else {
            return false; // unreachable: `line` is a &str
        };
        // Mirrors `resolve_attr_names`: trimmed name, or index given as
        // digits, deduplicated keeping the first occurrence.
        let spec = spec.trim();
        let attr = schema.attr_by_name(spec).or_else(|| {
            spec.parse::<usize>()
                .ok()
                .filter(|&i| i < n_attrs)
                .map(AttrId::new)
        });
        let Some(attr) = attr else {
            return false; // unknown attribute: the general path errors
        };
        if !scratch.seen[attr.index()] {
            scratch.seen[attr.index()] = true;
            scratch.attrs.push(attr);
        }
    }
    let accept = entry
        .filter
        .query_sorted_into(&scratch.attrs, &mut scratch.order)
        == FilterDecision::Accept;
    // Byte-identical to `Response::Check { .. }.encode()` plus newline.
    out.extend_from_slice(b"{\"ok\":true,\"kind\":\"check\",\"attrs\":[");
    for (i, &attr) in scratch.attrs.iter().enumerate() {
        if i > 0 {
            out.push(b',');
        }
        write_escaped_bytes(out, schema.attr(attr).name());
    }
    out.extend_from_slice(if accept {
        b"],\"accept\":true}\n".as_slice()
    } else {
        b"],\"accept\":false}\n".as_slice()
    });
    state.metrics.record("check", started.elapsed(), false);
    true
}

/// Recognises a plain `check` request line, collecting the `attrs`
/// spans into `attr_spans`. Returns `None` — never an error — on
/// anything the fast path does not handle bit-exactly like the general
/// parser: escapes or control bytes in strings, duplicate or unknown
/// keys, non-number `eps`, a `seed` that is not a plain integer
/// literal, nested values, or trailing garbage.
fn parse_check(bytes: &[u8], attr_spans: &mut Vec<(usize, usize)>) -> Option<ParsedCheck> {
    let mut s = Scan { bytes, pos: 0 };
    let mut cmd_ok = false;
    let mut path: Option<(usize, usize)> = None;
    let mut eps: Option<f64> = None;
    let mut seed: Option<u64> = None;
    let mut attrs_seen = false;
    s.skip_ws();
    s.eat(b'{')?;
    s.skip_ws();
    if !s.eat_if(b'}') {
        loop {
            s.skip_ws();
            let (klo, khi) = s.plain_string()?;
            s.skip_ws();
            s.eat(b':')?;
            s.skip_ws();
            match &bytes[klo..khi] {
                b"cmd" => {
                    if cmd_ok {
                        return None;
                    }
                    let (lo, hi) = s.plain_string()?;
                    if &bytes[lo..hi] != b"check" {
                        return None;
                    }
                    cmd_ok = true;
                }
                b"path" => {
                    if path.is_some() {
                        return None;
                    }
                    path = Some(s.plain_string()?);
                }
                b"eps" => {
                    if eps.is_some() {
                        return None;
                    }
                    let (lo, hi) = s.number_token()?;
                    // Same value the general parser's `as_f64` yields
                    // for any token it accepts (integer or float).
                    eps = Some(std::str::from_utf8(&bytes[lo..hi]).ok()?.parse().ok()?);
                }
                b"seed" => {
                    if seed.is_some() {
                        return None;
                    }
                    // Strictly a plain digit run within `i64` — exactly
                    // the tokens the general parser turns into a
                    // non-negative `Json::Int`. Signs, floats, huge
                    // digit runs and string seeds all bail.
                    let (lo, hi) = s.number_token()?;
                    let token = &bytes[lo..hi];
                    if !token.iter().all(u8::is_ascii_digit) {
                        return None;
                    }
                    let parsed: i64 = std::str::from_utf8(token).ok()?.parse().ok()?;
                    seed = Some(parsed as u64);
                }
                b"attrs" => {
                    if attrs_seen {
                        return None;
                    }
                    s.eat(b'[')?;
                    s.skip_ws();
                    if !s.eat_if(b']') {
                        loop {
                            s.skip_ws();
                            attr_spans.push(s.plain_string()?);
                            s.skip_ws();
                            match s.next()? {
                                b',' => {}
                                b']' => break,
                                _ => return None,
                            }
                        }
                    }
                    attrs_seen = true;
                }
                _ => return None, // unknown key: let the general path decide
            }
            s.skip_ws();
            match s.next()? {
                b',' => {}
                b'}' => break,
                _ => return None,
            }
        }
    }
    s.skip_ws();
    if s.pos != bytes.len() {
        return None; // trailing garbage: the general parser errors
    }
    if !(cmd_ok && attrs_seen) {
        return None;
    }
    Some(ParsedCheck {
        path: path?,
        eps: eps.unwrap_or(DEFAULT_EPS),
        seed: seed.unwrap_or(DEFAULT_SEED),
    })
}

/// A forward-only byte cursor over the request line.
struct Scan<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Scan<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn eat_if(&mut self, b: u8) -> bool {
        self.eat(b).is_some()
    }

    /// A string containing no escapes and no control bytes: the span
    /// between the quotes needs no decoding (it *is* the value).
    /// Anything fancier returns `None`.
    fn plain_string(&mut self) -> Option<(usize, usize)> {
        self.eat(b'"')?;
        let start = self.pos;
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    let end = self.pos;
                    self.pos += 1;
                    return Some((start, end));
                }
                b'\\' => return None,
                b if *b < 0x20 => return None,
                _ => self.pos += 1,
            }
        }
    }

    /// A number token under the wire grammar: an optional leading `-`,
    /// then a run of `[0-9.eE+-]`. The first byte must open a number
    /// the general parser would also accept (`-` or a digit).
    fn number_token(&mut self) -> Option<(usize, usize)> {
        if !matches!(self.peek(), Some(b'-' | b'0'..=b'9')) {
            return None;
        }
        let start = self.pos;
        self.pos += 1;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        Some((start, self.pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Option<(ParsedCheck, Vec<(usize, usize)>)> {
        let mut spans = Vec::new();
        parse_check(line.as_bytes(), &mut spans).map(|p| (p, spans))
    }

    #[test]
    fn recognises_a_plain_check_line() {
        let line =
            r#"{"cmd":"check","path":"/tmp/a.csv","eps":0.01,"seed":42,"attrs":["zip","age"]}"#;
        let (p, spans) = parse(line).expect("plain line recognised");
        assert_eq!(&line.as_bytes()[p.path.0..p.path.1], b"/tmp/a.csv");
        assert_eq!(p.eps, 0.01);
        assert_eq!(p.seed, 42);
        let attrs: Vec<&[u8]> = spans
            .iter()
            .map(|&(lo, hi)| &line.as_bytes()[lo..hi])
            .collect();
        assert_eq!(attrs, vec![b"zip".as_slice(), b"age".as_slice()]);
    }

    #[test]
    fn defaults_and_whitespace_and_key_order() {
        let line = r#" { "attrs" : [ "x" ] , "path" : "a.csv" , "cmd" : "check" } "#;
        let (p, spans) = parse(line).expect("reordered line recognised");
        assert_eq!(p.eps, DEFAULT_EPS);
        assert_eq!(p.seed, DEFAULT_SEED);
        assert_eq!(spans.len(), 1);
    }

    #[test]
    fn empty_attrs_array_is_recognised() {
        let (_, spans) = parse(r#"{"cmd":"check","path":"a.csv","attrs":[]}"#).unwrap();
        assert!(spans.is_empty());
    }

    #[test]
    fn bails_on_everything_unusual() {
        for line in [
            // not check / missing required fields
            r#"{"cmd":"stats","path":"a.csv"}"#,
            r#"{"cmd":"check","attrs":["x"]}"#,
            r#"{"cmd":"check","path":"a.csv"}"#,
            r#"{"path":"a.csv","attrs":["x"]}"#,
            "{}",
            // unknown and duplicate keys
            r#"{"cmd":"check","path":"a.csv","attrs":["x"],"future":1}"#,
            r#"{"cmd":"check","path":"a.csv","path":"b.csv","attrs":["x"]}"#,
            r#"{"cmd":"check","cmd":"check","path":"a.csv","attrs":["x"]}"#,
            // escapes and control bytes must fall back to the full parser
            r#"{"cmd":"check","path":"a\tb.csv","attrs":["x"]}"#,
            r#"{"cmd":"check","path":"a.csv","attrs":["x\n"]}"#,
            "{\"cmd\":\"check\",\"path\":\"a\u{1}b\",\"attrs\":[]}",
            // seeds that are not plain i64 digit runs
            r#"{"cmd":"check","path":"a.csv","seed":-3,"attrs":["x"]}"#,
            r#"{"cmd":"check","path":"a.csv","seed":1.5,"attrs":["x"]}"#,
            r#"{"cmd":"check","path":"a.csv","seed":"42","attrs":["x"]}"#,
            r#"{"cmd":"check","path":"a.csv","seed":99999999999999999999,"attrs":["x"]}"#,
            // eps oddities
            r#"{"cmd":"check","path":"a.csv","eps":"0.01","attrs":["x"]}"#,
            r#"{"cmd":"check","path":"a.csv","eps":1.2.3,"attrs":["x"]}"#,
            // structure the scanner does not model
            r#"{"cmd":"check","path":"a.csv","attrs":["x",1]}"#,
            r#"{"cmd":"check","path":"a.csv","attrs":"x"}"#,
            r#"{"cmd":"check","path":"a.csv","attrs":["x"]} trailing"#,
            r#"{"cmd":"check","path":"a.csv","attrs":["x"]"#,
            "not json",
            "",
        ] {
            assert!(parse(line).is_none(), "should bail on {line:?}");
        }
    }

    #[test]
    fn huge_but_valid_seed_is_kept_exact() {
        let line = format!(
            r#"{{"cmd":"check","path":"a.csv","seed":{},"attrs":["x"]}}"#,
            i64::MAX
        );
        let (p, _) = parse(&line).unwrap();
        assert_eq!(p.seed, i64::MAX as u64);
    }
}
