//! Flight recorder: per-request tracing, Prometheus exposition, and
//! slow-request forensics.
//!
//! Three surfaces share this module:
//!
//! 1. **Per-request spans.** Every request gets a monotonic id and a
//!    fixed-size `SpanRecord` (command, dataset-key hash, queue /
//!    serve / write phase timings, bytes in/out, outcome). Workers
//!    write records into a preallocated per-connection
//!    [`PendingSpans`] arena inside `Scratch` — no allocation on the
//!    steady-state `check` fast path — and the poller-wake epilogue
//!    publishes them by copy into a lock-light `TraceRing`. The
//!    `trace` protocol command reads the ring live.
//!
//! 2. **Prometheus text exposition.** `prometheus_text` renders the
//!    server's counters, gauges, and log₂ latency histograms in the
//!    text format 0.0.4; `metrics_listener_loop` serves it over a
//!    hand-rolled HTTP GET handler on `--metrics-addr` (std-only, in
//!    keeping with the repo's no-deps discipline).
//!
//! 3. **Structured event log.** Requests slower than `--slow-ms` emit
//!    one NDJSON line to stderr with the full span breakdown; registry
//!    lifecycle events (build, restore, evict, stale rebuild, unload,
//!    purge) and connection-hardening rejections log the same way
//!    behind `--log-json`.
//!
//! # Ring-buffer semantics
//!
//! The ring is a seqlock per slot: writers claim a ticket with one
//! `fetch_add` on `head`, then CAS the slot's sequence number from
//! even to odd, store the record words, and release the sequence at
//! `seq + 2`. A writer that loses the CAS (another writer lapped the
//! ring onto the same slot) drops its record and counts it — writers
//! never block, never spin, and never allocate. Readers snapshot
//! newest-first and skip slots whose sequence changes mid-read, so a
//! torn record is never observed. The ring is forensics, not an audit
//! log: under overload the oldest records are overwritten and a
//! `qid_trace_spans_dropped_total` counter owns the loss.

use std::io::{Read as _, Write as IoWrite};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::metrics::{COMMAND_NAMES, LATENCY_BUCKETS};
use crate::proto::TraceSpan;
use crate::registry::RegistryEvent;
use crate::server::ServerState;

/// The crate version baked into `qid_build_info` and the `metrics`
/// JSON response.
pub const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Span outcome: the request was answered successfully.
pub(crate) const OUTCOME_OK: u8 = 0;
/// Span outcome: the server answered with a structured error.
pub(crate) const OUTCOME_ERROR: u8 = 1;
/// Span outcome: the line failed to parse as any request.
pub(crate) const OUTCOME_PROTOCOL: u8 = 2;
/// Span outcome: the line crossed `--max-line-bytes`.
pub(crate) const OUTCOME_OVERSIZE: u8 = 3;
/// Span outcome: the connection's token bucket rejected the line.
pub(crate) const OUTCOME_RATE_LIMITED: u8 = 4;

/// Command code for spans with no decodable command (protocol errors,
/// oversize and rate-limited rejections).
pub(crate) const CMD_NONE: u8 = u8::MAX;

/// Command code of `check` — the fast path stamps this constant
/// instead of scanning [`COMMAND_NAMES`]. Pinned by a unit test.
pub(crate) const CMD_CHECK: u8 = 3;

/// Human label for a span outcome code.
pub(crate) fn outcome_label(outcome: u8) -> &'static str {
    match outcome {
        OUTCOME_OK => "ok",
        OUTCOME_ERROR => "error",
        OUTCOME_PROTOCOL => "protocol_error",
        OUTCOME_OVERSIZE => "rejected_oversize",
        OUTCOME_RATE_LIMITED => "rejected_rate",
        _ => "unknown",
    }
}

/// Command code for a wire command name (index into
/// [`COMMAND_NAMES`]), or [`CMD_NONE`] when unknown.
pub(crate) fn command_code(name: &str) -> u8 {
    COMMAND_NAMES
        .iter()
        .position(|&n| n == name)
        .map_or(CMD_NONE, |i| i as u8)
}

/// Human label for a command code.
pub(crate) fn command_label(code: u8) -> &'static str {
    COMMAND_NAMES.get(code as usize).copied().unwrap_or("-")
}

/// Words per packed span record in the ring.
pub(crate) const SPAN_WORDS: usize = 9;

/// One request's span: fixed-size, `Copy`, allocation-free to fill.
///
/// Timings are microseconds. `queue_us` is the wait between the
/// poller handing the connection to the worker pool and a worker
/// picking it up (shared by every request served in that wake);
/// `write_us` is the wake's response-flush time, likewise shared.
/// `end_us` is the publish instant, measured from server start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct SpanRecord {
    /// Monotonic request id (1-based; 0 = unset).
    pub id: u64,
    /// Command code (index into [`COMMAND_NAMES`], or [`CMD_NONE`]).
    pub command: u8,
    /// Outcome code (`OUTCOME_*`).
    pub outcome: u8,
    /// FNV-1a hash of the dataset cache key; 0 when no dataset was
    /// resolved. Matches the registry's persistence file stem.
    pub key_hash: u64,
    /// Queue wait before a worker picked the wake up, µs.
    pub queue_us: u64,
    /// In-worker serve time for this request, µs.
    pub serve_us: u64,
    /// Response write/flush time for the wake, µs.
    pub write_us: u64,
    /// Request-line bytes.
    pub bytes_in: u64,
    /// Response bytes produced by this request.
    pub bytes_out: u64,
    /// Publish time, µs since server start.
    pub end_us: u64,
}

impl SpanRecord {
    /// Packs the record into the ring's word layout.
    fn to_words(self) -> [u64; SPAN_WORDS] {
        [
            self.id,
            (u64::from(self.command) << 8) | u64::from(self.outcome),
            self.key_hash,
            self.queue_us,
            self.serve_us,
            self.write_us,
            self.bytes_in,
            self.bytes_out,
            self.end_us,
        ]
    }

    /// Unpacks a record from the ring's word layout.
    fn from_words(words: &[u64; SPAN_WORDS]) -> SpanRecord {
        SpanRecord {
            id: words[0],
            command: (words[1] >> 8) as u8,
            outcome: words[1] as u8,
            key_hash: words[2],
            queue_us: words[3],
            serve_us: words[4],
            write_us: words[5],
            bytes_in: words[6],
            bytes_out: words[7],
            end_us: words[8],
        }
    }

    /// Total request latency (queue + serve + write), µs.
    fn total_us(&self) -> u64 {
        self.queue_us
            .saturating_add(self.serve_us)
            .saturating_add(self.write_us)
    }
}

/// One seqlock-protected ring slot.
#[derive(Debug, Default)]
struct RingSlot {
    /// Even = stable, odd = a writer owns the slot. 0 = never written.
    seq: AtomicU64,
    words: [AtomicU64; SPAN_WORDS],
}

/// Spans retained by the `trace` command: the ring's slot count.
pub(crate) const TRACE_RING_SLOTS: usize = 4096;

/// Fixed-size lock-light span ring. See the module docs for the
/// seqlock protocol.
#[derive(Debug)]
pub(crate) struct TraceRing {
    slots: Box<[RingSlot]>,
    /// Next ticket; slot = ticket mod slot count.
    head: AtomicU64,
    /// Records dropped because a concurrent writer held the slot.
    dropped: AtomicU64,
}

impl TraceRing {
    /// Creates a ring with `slots` slots (all empty).
    fn new(slots: usize) -> TraceRing {
        TraceRing {
            slots: (0..slots.max(1)).map(|_| RingSlot::default()).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Publishes one record by copy. Never blocks, never allocates; on
    /// writer collision the record is dropped and counted.
    fn publish(&self, record: &SpanRecord) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq & 1 == 1
            || slot
                .seq
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        for (word, value) in slot.words.iter().zip(record.to_words()) {
            word.store(value, Ordering::Relaxed);
        }
        slot.seq.store(seq + 2, Ordering::Release);
    }

    /// Snapshots up to `max` stable records, newest first. Slots torn
    /// by a concurrent writer are skipped, not mis-read. The reader
    /// allocates — it runs on the `trace` command path, never on the
    /// serving fast path.
    fn snapshot(&self, max: usize) -> Vec<SpanRecord> {
        let head = self.head.load(Ordering::Acquire);
        let slots = self.slots.len() as u64;
        let mut out = Vec::with_capacity(max.min(self.slots.len()));
        for back in 0..head.min(slots) {
            if out.len() >= max {
                break;
            }
            let slot = &self.slots[((head - 1 - back) % slots) as usize];
            for _attempt in 0..2 {
                let before = slot.seq.load(Ordering::Acquire);
                if before == 0 || before & 1 == 1 {
                    break;
                }
                let mut words = [0u64; SPAN_WORDS];
                for (dst, word) in words.iter_mut().zip(&slot.words) {
                    *dst = word.load(Ordering::Acquire);
                }
                if slot.seq.load(Ordering::Acquire) == before {
                    out.push(SpanRecord::from_words(&words));
                    break;
                }
            }
        }
        out
    }

    /// Records dropped on writer collision.
    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Requests a single poller wake can span-track before overflowing.
/// A wake serves at most the frames already buffered on one
/// connection, so 64 covers heavy pipelining; beyond that, spans are
/// dropped and counted, and serving is unaffected.
pub(crate) const PENDING_SPANS: usize = 64;

/// Preallocated per-connection span arena, embedded in `Scratch`.
/// Filling it is allocation-free; `Obs::publish_wake` drains it.
#[derive(Debug)]
pub struct PendingSpans {
    records: [SpanRecord; PENDING_SPANS],
    len: usize,
    /// Queue wait for the current wake, µs (stamped by the poller
    /// dispatch epilogue, shared by every span in the wake).
    queue_us: u64,
    /// Spans dropped because the arena filled mid-wake.
    overflow: u64,
}

impl Default for PendingSpans {
    fn default() -> PendingSpans {
        PendingSpans {
            records: [SpanRecord::default(); PENDING_SPANS],
            len: 0,
            queue_us: 0,
            overflow: 0,
        }
    }
}

impl PendingSpans {
    /// Stamps the queue wait for the wake being served.
    pub(crate) fn set_queue_us(&mut self, queue_us: u64) {
        self.queue_us = queue_us;
    }
}

/// Observability hub hanging off `ServerState`: span ids, the trace
/// ring, slow-request detection, structured logging, and the gauges
/// the Prometheus endpoint exports.
#[derive(Debug)]
pub struct Obs {
    /// Server start instant — the zero point for `end_us` and uptime.
    born: Instant,
    next_id: AtomicU64,
    ring: TraceRing,
    /// Slow-request threshold in µs; 0 disables detection.
    slow_us: u64,
    /// Emit NDJSON lifecycle/rejection events to stderr.
    log_json: bool,
    /// Spans dropped by arena overflow (ring collisions count
    /// separately inside the ring).
    spans_dropped: AtomicU64,
    /// Connections registered with each poller shard (idle +
    /// write-parked), one gauge per shard, set by each shard's loop.
    shard_conns: Box<[AtomicU64]>,
    /// Connections currently dispatched to (or queued for) workers.
    dispatched: AtomicU64,
    /// Jobs sitting in the worker-pool queue; shared with the pool's
    /// `GaugedSender` so the gauge survives without a pool→obs
    /// dependency.
    queue_depth: Arc<AtomicU64>,
}

impl Obs {
    /// Creates the hub with one connection gauge per poller shard.
    /// `slow_us` of 0 disables slow-request lines.
    pub(crate) fn new(slow_us: u64, log_json: bool, pollers: usize) -> Obs {
        Obs {
            born: Instant::now(),
            next_id: AtomicU64::new(0),
            ring: TraceRing::new(TRACE_RING_SLOTS),
            slow_us,
            log_json,
            spans_dropped: AtomicU64::new(0),
            shard_conns: (0..pollers.max(1)).map(|_| AtomicU64::new(0)).collect(),
            dispatched: AtomicU64::new(0),
            queue_depth: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Whether NDJSON lifecycle/rejection logging is on.
    pub(crate) fn log_json(&self) -> bool {
        self.log_json
    }

    /// Seconds since the server started.
    pub(crate) fn uptime_seconds(&self) -> u64 {
        self.born.elapsed().as_secs()
    }

    /// The shared worker-queue depth counter (handed to the pool's
    /// `GaugedSender`).
    pub(crate) fn queue_depth_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.queue_depth)
    }

    /// Current worker-queue depth.
    pub(crate) fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Updates one shard's registered-connection gauge (each poller
    /// loop sets its own slot). Out-of-range shards are ignored.
    pub(crate) fn set_shard_conns(&self, shard: usize, conns: u64) {
        if let Some(gauge) = self.shard_conns.get(shard) {
            gauge.store(conns, Ordering::Relaxed);
        }
    }

    /// Per-shard registered-connection gauges, in shard order.
    pub(crate) fn shard_connections(&self) -> Vec<u64> {
        self.shard_conns
            .iter()
            .map(|g| g.load(Ordering::Relaxed))
            .collect()
    }

    /// Connections registered across all poller shards (idle +
    /// write-parked).
    pub(crate) fn idle_fds(&self) -> u64 {
        self.shard_conns
            .iter()
            .map(|g| g.load(Ordering::Relaxed))
            .sum()
    }

    /// A connection left the poller for the worker pool.
    pub(crate) fn connection_dispatched(&self) {
        self.dispatched.fetch_add(1, Ordering::Relaxed);
    }

    /// A dispatched connection finished its wake.
    pub(crate) fn connection_settled(&self) {
        self.dispatched.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections currently dispatched to workers.
    pub(crate) fn dispatched_connections(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Total spans lost (arena overflow + ring writer collisions).
    pub(crate) fn spans_dropped(&self) -> u64 {
        self.spans_dropped.load(Ordering::Relaxed) + self.ring.dropped()
    }

    /// Records one request's span into the per-connection arena.
    /// Allocation-free: assigns the id, copies the fields, and
    /// returns. `write_us`/`end_us` are stamped later by
    /// [`Obs::publish_wake`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn note(
        &self,
        spans: &mut PendingSpans,
        command: u8,
        outcome: u8,
        key_hash: u64,
        serve: Duration,
        bytes_in: usize,
        bytes_out: usize,
    ) {
        if spans.len >= PENDING_SPANS {
            spans.overflow += 1;
            return;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        spans.records[spans.len] = SpanRecord {
            id,
            command,
            outcome,
            key_hash,
            queue_us: spans.queue_us,
            serve_us: duration_us(serve),
            write_us: 0,
            bytes_in: bytes_in as u64,
            bytes_out: bytes_out as u64,
            end_us: 0,
        };
        spans.len += 1;
    }

    /// Wake epilogue: stamps the shared write time and publish
    /// instant into every pending span, publishes them to the ring by
    /// copy, emits slow-request NDJSON lines for offenders, and
    /// resets the arena. Allocation-free unless a slow line fires.
    pub(crate) fn publish_wake(&self, spans: &mut PendingSpans, write: Duration) {
        let write_us = duration_us(write);
        let end_us = duration_us(self.born.elapsed());
        for record in &mut spans.records[..spans.len] {
            record.write_us = write_us;
            record.end_us = end_us;
            self.ring.publish(record);
            if self.slow_us > 0 && record.total_us() >= self.slow_us {
                log_slow_request(record);
            }
        }
        if spans.overflow > 0 {
            self.spans_dropped
                .fetch_add(spans.overflow, Ordering::Relaxed);
        }
        spans.len = 0;
        spans.overflow = 0;
        spans.queue_us = 0;
    }

    /// Reads the newest spans from the ring for the `trace` command:
    /// up to `last` records, filtered by command code and minimum
    /// total duration (µs).
    pub(crate) fn trace(&self, last: usize, command: Option<u8>, min_us: u64) -> Vec<TraceSpan> {
        let now_us = duration_us(self.born.elapsed());
        self.ring
            .snapshot(TRACE_RING_SLOTS)
            .into_iter()
            .filter(|r| command.is_none_or(|c| r.command == c))
            .filter(|r| r.total_us() >= min_us)
            .take(last)
            .map(|r| TraceSpan {
                id: r.id,
                command: command_label(r.command).to_string(),
                outcome: outcome_label(r.outcome).to_string(),
                key: if r.key_hash == 0 {
                    String::new()
                } else {
                    format!("{:016x}", r.key_hash)
                },
                queue_us: r.queue_us,
                serve_us: r.serve_us,
                write_us: r.write_us,
                bytes_in: r.bytes_in,
                bytes_out: r.bytes_out,
                age_ms: now_us.saturating_sub(r.end_us) / 1000,
            })
            .collect()
    }
}

/// `Duration` → saturating µs.
pub(crate) fn duration_us(d: Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

/// Milliseconds since the Unix epoch (for NDJSON `ts_ms` fields).
fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis().min(u64::MAX as u128) as u64)
}

/// Writes one NDJSON line to stderr under the stderr lock. All event
/// lines funnel through here so interleaved workers cannot shear a
/// line.
fn log_line(line: &str) {
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = writeln!(handle, "{line}");
}

/// Emits the slow-request NDJSON line for one span. Allocates — this
/// only runs for requests already past the `--slow-ms` threshold.
fn log_slow_request(record: &SpanRecord) {
    log_line(&format!(
        "{{\"ts_ms\":{},\"event\":\"slow_request\",\"id\":{},\"command\":\"{}\",\
         \"outcome\":\"{}\",\"key\":\"{}\",\"queue_us\":{},\"serve_us\":{},\
         \"write_us\":{},\"bytes_in\":{},\"bytes_out\":{},\"total_us\":{}}}",
        unix_ms(),
        record.id,
        command_label(record.command),
        outcome_label(record.outcome),
        if record.key_hash == 0 {
            String::new()
        } else {
            format!("{:016x}", record.key_hash)
        },
        record.queue_us,
        record.serve_us,
        record.write_us,
        record.bytes_in,
        record.bytes_out,
        record.total_us(),
    ));
}

/// The registry event sink installed behind `--log-json`: one NDJSON
/// lifecycle line per cache event. A plain `fn` pointer so
/// `RegistryConfig` keeps deriving `Clone`/`Debug`.
pub(crate) fn log_registry_event(event: RegistryEvent) {
    let line = match event {
        RegistryEvent::Built { key, bytes } => format!(
            "{{\"ts_ms\":{},\"event\":\"cache_build\",\"key\":\"{key:016x}\",\"bytes\":{bytes}}}",
            unix_ms()
        ),
        RegistryEvent::Restored { key, bytes } => format!(
            "{{\"ts_ms\":{},\"event\":\"cache_restore\",\"key\":\"{key:016x}\",\"bytes\":{bytes}}}",
            unix_ms()
        ),
        RegistryEvent::Evicted { key, bytes } => format!(
            "{{\"ts_ms\":{},\"event\":\"cache_evict\",\"key\":\"{key:016x}\",\"bytes\":{bytes}}}",
            unix_ms()
        ),
        RegistryEvent::StaleRebuild { key } => format!(
            "{{\"ts_ms\":{},\"event\":\"cache_stale_rebuild\",\"key\":\"{key:016x}\"}}",
            unix_ms()
        ),
        RegistryEvent::AppendUpdate { key, bytes } => format!(
            "{{\"ts_ms\":{},\"event\":\"cache_append_update\",\"key\":\"{key:016x}\",\"bytes\":{bytes}}}",
            unix_ms()
        ),
        RegistryEvent::SketchBuilt { key, bytes } => format!(
            "{{\"ts_ms\":{},\"event\":\"cache_sketch_build\",\"key\":\"{key:016x}\",\"bytes\":{bytes}}}",
            unix_ms()
        ),
        RegistryEvent::DiskEvicted { key, bytes } => format!(
            "{{\"ts_ms\":{},\"event\":\"cache_disk_evict\",\"key\":\"{key:016x}\",\"bytes\":{bytes}}}",
            unix_ms()
        ),
        RegistryEvent::Unloaded { key } => format!(
            "{{\"ts_ms\":{},\"event\":\"cache_unload\",\"key\":\"{key:016x}\"}}",
            unix_ms()
        ),
        RegistryEvent::Purged { entries, files } => format!(
            "{{\"ts_ms\":{},\"event\":\"cache_purge\",\"entries\":{entries},\"files\":{files}}}",
            unix_ms()
        ),
    };
    log_line(&line);
}

/// Emits a connection-hardening rejection event (`--log-json` paths
/// only; the caller checks the flag first).
pub(crate) fn log_rejection(kind: &str) {
    log_line(&format!("{{\"ts_ms\":{},\"event\":\"{kind}\"}}", unix_ms()));
}

// ------------------------------------------------------- Prometheus

/// Renders the full Prometheus text-format (0.0.4) payload for
/// `GET /metrics`: every JSON-metrics counter, the log₂ latency
/// histograms as native `_bucket`/`_sum`/`_count` families
/// (cumulative since process start, per Prometheus semantics — the
/// JSON report's p50/p99 use the sliding window instead), and the
/// connection/queue/cache gauges.
pub(crate) fn prometheus_text(state: &ServerState) -> String {
    use std::fmt::Write as _;

    let mut out = String::with_capacity(16 * 1024);
    let registry = state.registry.snapshot();
    let metrics = &state.metrics;
    let obs = state.obs();

    let _ = writeln!(
        out,
        "# HELP qid_build_info Build metadata; the value is always 1.\n\
         # TYPE qid_build_info gauge\n\
         qid_build_info{{version=\"{BUILD_VERSION}\"}} 1"
    );
    let _ = writeln!(
        out,
        "# HELP qid_uptime_seconds Seconds since the server started.\n\
         # TYPE qid_uptime_seconds gauge\n\
         qid_uptime_seconds {}",
        obs.uptime_seconds()
    );

    let _ = writeln!(
        out,
        "# HELP qid_requests_total Requests handled, by command.\n\
         # TYPE qid_requests_total counter"
    );
    for (idx, &name) in COMMAND_NAMES.iter().enumerate() {
        let (count, _, _) = metrics.raw_command_counters(idx);
        let _ = writeln!(out, "qid_requests_total{{command=\"{name}\"}} {count}");
    }
    let _ = writeln!(
        out,
        "# HELP qid_request_errors_total Requests answered with a structured error, by command.\n\
         # TYPE qid_request_errors_total counter"
    );
    for (idx, &name) in COMMAND_NAMES.iter().enumerate() {
        let (_, errors, _) = metrics.raw_command_counters(idx);
        let _ = writeln!(
            out,
            "qid_request_errors_total{{command=\"{name}\"}} {errors}"
        );
    }

    let _ = writeln!(
        out,
        "# HELP qid_request_latency_seconds In-worker request latency, by command \
         (log2 buckets, cumulative since start).\n\
         # TYPE qid_request_latency_seconds histogram"
    );
    for (idx, &name) in COMMAND_NAMES.iter().enumerate() {
        let (count, _, latency_us) = metrics.raw_command_counters(idx);
        let buckets = metrics.cumulative_buckets(idx);
        let mut running = 0u64;
        for (i, &observations) in buckets.iter().enumerate().take(LATENCY_BUCKETS - 1) {
            running += observations;
            let le = crate::metrics::bucket_upper_us(i) as f64 / 1e6;
            let _ = writeln!(
                out,
                "qid_request_latency_seconds_bucket{{command=\"{name}\",le=\"{le}\"}} {running}"
            );
        }
        // `+Inf` comes from the request counter, which is bumped
        // before the bucket: a racing scrape sees +Inf >= every
        // finite bucket, keeping the family monotone.
        let _ = writeln!(
            out,
            "qid_request_latency_seconds_bucket{{command=\"{name}\",le=\"+Inf\"}} {count}"
        );
        let _ = writeln!(
            out,
            "qid_request_latency_seconds_sum{{command=\"{name}\"}} {}",
            latency_us as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "qid_request_latency_seconds_count{{command=\"{name}\"}} {count}"
        );
    }

    let singles: [(&str, &str, &str, u64); 20] = [
        (
            "qid_protocol_errors_total",
            "counter",
            "Lines that failed to parse as any request.",
            metrics.protocol_errors.load(Ordering::Relaxed),
        ),
        (
            "qid_connections_accepted_total",
            "counter",
            "Connections accepted since start.",
            metrics.connections.load(Ordering::Relaxed),
        ),
        (
            "qid_bytes_read_total",
            "counter",
            "Request bytes drained off client sockets.",
            metrics.bytes_read.load(Ordering::Relaxed),
        ),
        (
            "qid_bytes_written_total",
            "counter",
            "Response bytes flushed to client sockets.",
            metrics.bytes_written.load(Ordering::Relaxed),
        ),
        (
            "qid_worker_queue_depth",
            "gauge",
            "Jobs waiting in (or running from) the worker-pool queue.",
            obs.queue_depth(),
        ),
        (
            "qid_poller_registered_fds",
            "gauge",
            "Connections registered across all poller shards.",
            obs.idle_fds(),
        ),
        (
            "qid_rejected_busy_total",
            "counter",
            "Connections turned away at accept by --max-conns admission control.",
            metrics.rejected_busy.load(Ordering::Relaxed),
        ),
        (
            "qid_writes_parked_total",
            "counter",
            "Responses parked with their connection for a readiness-driven flush.",
            metrics.writes_parked.load(Ordering::Relaxed),
        ),
        (
            "qid_cache_hits_total",
            "counter",
            "Registry lookups served from a resident entry.",
            registry.hits,
        ),
        (
            "qid_cache_misses_total",
            "counter",
            "Registry lookups that built a new entry.",
            registry.misses,
        ),
        (
            "qid_cache_disk_hits_total",
            "counter",
            "Registry lookups restored from the cache dir.",
            registry.disk_hits,
        ),
        (
            "qid_cache_evictions_total",
            "counter",
            "Entries evicted by the resident-byte budget.",
            registry.evictions,
        ),
        (
            "qid_cache_stale_rebuilds_total",
            "counter",
            "Entries rebuilt after their source file changed.",
            registry.stale_rebuilds,
        ),
        (
            "qid_cache_upgrades_total",
            "counter",
            "Stream-mode entries upgraded to materialised datasets.",
            registry.upgrades,
        ),
        (
            "qid_cache_append_updates_total",
            "counter",
            "Grown sources absorbed incrementally (suffix-only scans).",
            registry.append_updates,
        ),
        (
            "qid_cache_sweep_refreshes_total",
            "counter",
            "Entries refreshed by the background revalidation sweeper.",
            registry.sweep_refreshes,
        ),
        (
            "qid_cache_resident_bytes",
            "gauge",
            "Approximate bytes of resident cache entries.",
            registry.resident_bytes,
        ),
        (
            "qid_restarts_total",
            "counter",
            "Prior lives of this server's cache dir, per the registry journal.",
            registry.restarts,
        ),
        (
            "qid_wal_replayed_events_total",
            "counter",
            "Registry journal records replayed at startup to warm the cache.",
            registry.wal_replayed_events,
        ),
        (
            "qid_trace_spans_dropped_total",
            "counter",
            "Trace spans lost to arena overflow or ring collisions.",
            obs.spans_dropped(),
        ),
    ];
    for (name, kind, help, value) in singles {
        let _ = writeln!(
            out,
            "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}"
        );
    }

    let _ = writeln!(
        out,
        "# HELP qid_cache_entries Completed entries resident in the registry.\n\
         # TYPE qid_cache_entries gauge\n\
         qid_cache_entries {}",
        registry.datasets
    );
    let _ = writeln!(
        out,
        "# HELP qid_connections Current connections, by state.\n\
         # TYPE qid_connections gauge\n\
         qid_connections{{state=\"idle\"}} {}\n\
         qid_connections{{state=\"dispatched\"}} {}",
        obs.idle_fds(),
        obs.dispatched_connections()
    );
    let _ = writeln!(
        out,
        "# HELP qid_rejected_lines_total Request lines rejected by connection hardening.\n\
         # TYPE qid_rejected_lines_total counter\n\
         qid_rejected_lines_total{{reason=\"oversize\"}} {}\n\
         qid_rejected_lines_total{{reason=\"rate_limited\"}} {}",
        metrics.rejected_oversize.load(Ordering::Relaxed),
        metrics.rejected_rate.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        out,
        "# HELP qid_poller_connections Connections registered with each poller shard (idle + write-parked).\n\
         # TYPE qid_poller_connections gauge"
    );
    for (shard, conns) in obs.shard_connections().iter().enumerate() {
        let _ = writeln!(out, "qid_poller_connections{{poller=\"{shard}\"}} {conns}");
    }
    out
}

/// Serves `GET /metrics` on the `--metrics-addr` listener until the
/// server starts shutting down. Hand-rolled HTTP: read one request
/// head (2 s timeout, 4 KiB cap), answer, close. Scrapes are rare
/// and cheap, so one connection at a time is plenty.
pub(crate) fn metrics_listener_loop(listener: TcpListener, state: Arc<ServerState>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if state.is_shutting_down() {
                    return;
                }
                continue;
            }
        };
        if state.is_shutting_down() {
            return;
        }
        let _ = serve_scrape(stream, &state);
    }
}

/// Answers one HTTP exchange on an accepted scrape connection.
fn serve_scrape(mut stream: TcpStream, state: &ServerState) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut head = [0u8; 4096];
    let mut used = 0;
    while used < head.len() {
        let n = stream.read(&mut head[used..])?;
        if n == 0 {
            break;
        }
        used += n;
        if head[..used].windows(2).any(|w| w == b"\n\n")
            || head[..used].windows(4).any(|w| w == b"\r\n\r\n")
        {
            break;
        }
    }
    let request = String::from_utf8_lossy(&head[..used]);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, body) = match (method, path) {
        ("GET", "/metrics") => ("200 OK", prometheus_text(state)),
        ("GET", "/") => ("200 OK", "qid-server: scrape /metrics\n".to_string()),
        _ => ("404 Not Found", "not found; scrape /metrics\n".to_string()),
    };
    let header = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_command_code_is_pinned() {
        assert_eq!(COMMAND_NAMES[CMD_CHECK as usize], "check");
        assert_eq!(command_code("check"), CMD_CHECK);
        assert_eq!(command_code("no-such-command"), CMD_NONE);
        assert_eq!(command_label(CMD_CHECK), "check");
        assert_eq!(command_label(CMD_NONE), "-");
    }

    #[test]
    fn span_records_roundtrip_through_word_packing() {
        let record = SpanRecord {
            id: 42,
            command: CMD_CHECK,
            outcome: OUTCOME_RATE_LIMITED,
            key_hash: 0xdead_beef_cafe_f00d,
            queue_us: 7,
            serve_us: 123,
            write_us: 9,
            bytes_in: 256,
            bytes_out: 512,
            end_us: 1_000_000,
        };
        assert_eq!(SpanRecord::from_words(&record.to_words()), record);
    }

    #[test]
    fn ring_publishes_and_snapshots_newest_first() {
        let ring = TraceRing::new(4);
        for id in 1..=6u64 {
            ring.publish(&SpanRecord {
                id,
                ..SpanRecord::default()
            });
        }
        // Capacity 4: ids 3..=6 survive, newest first.
        let ids: Vec<u64> = ring.snapshot(16).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![6, 5, 4, 3]);
        assert_eq!(ring.dropped(), 0);
        // A bounded snapshot takes the newest `max`.
        let ids: Vec<u64> = ring.snapshot(2).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![6, 5]);
    }

    #[test]
    fn pending_spans_overflow_is_counted_not_grown() {
        let obs = Obs::new(0, false, 1);
        let mut spans = PendingSpans::default();
        for _ in 0..(PENDING_SPANS + 3) {
            obs.note(
                &mut spans,
                CMD_CHECK,
                OUTCOME_OK,
                1,
                Duration::from_micros(5),
                10,
                20,
            );
        }
        assert_eq!(spans.len, PENDING_SPANS);
        assert_eq!(spans.overflow, 3);
        obs.publish_wake(&mut spans, Duration::ZERO);
        assert_eq!(spans.len, 0);
        assert_eq!(spans.overflow, 0);
        assert_eq!(obs.spans_dropped(), 3);
        assert_eq!(obs.ring.snapshot(usize::MAX).len(), PENDING_SPANS);
    }

    #[test]
    fn shard_gauges_sum_into_the_registered_fd_gauge() {
        let obs = Obs::new(0, false, 3);
        obs.set_shard_conns(0, 10);
        obs.set_shard_conns(1, 20);
        obs.set_shard_conns(2, 30);
        obs.set_shard_conns(99, 1_000_000); // out of range: ignored
        assert_eq!(obs.shard_connections(), vec![10, 20, 30]);
        assert_eq!(obs.idle_fds(), 60);
    }

    /// The seqlock stress test: writers on several threads hammer a
    /// tiny ring (maximising lapping collisions) while a reader
    /// snapshots continuously. Every field of every published record
    /// is a deterministic function of its id, so a single torn word —
    /// a reader observing a mix of two writers' records — is caught.
    /// Afterwards, the drop counter must account for exactly the
    /// tickets that did not surface as publishable records.
    #[test]
    fn ring_survives_concurrent_writers_without_tearing() {
        use std::sync::atomic::AtomicBool;

        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 20_000;

        // Derives the full record from an id, mirroring what writers
        // publish. A torn read mixes two ids and fails the comparison.
        fn record_for(id: u64) -> SpanRecord {
            SpanRecord {
                id,
                command: (id % COMMAND_NAMES.len() as u64) as u8,
                outcome: (id % 5) as u8,
                key_hash: id.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                queue_us: id ^ 0xaaaa,
                serve_us: id.rotate_left(17),
                write_us: id ^ 0x5555,
                bytes_in: id.wrapping_add(7),
                bytes_out: id.wrapping_mul(3),
                end_us: id.rotate_right(23),
            }
        }

        // 8 slots: with 4 writers × 20k tickets each, lapping
        // collisions are guaranteed, exercising the drop path hard.
        let ring = std::sync::Arc::new(TraceRing::new(8));
        let stop = std::sync::Arc::new(AtomicBool::new(false));

        let reader = {
            let ring = std::sync::Arc::clone(&ring);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                while !stop.load(Ordering::Acquire) {
                    for record in ring.snapshot(usize::MAX) {
                        assert_eq!(
                            record,
                            record_for(record.id),
                            "torn span observed for id {}",
                            record.id
                        );
                        seen += 1;
                    }
                }
                seen
            })
        };

        let writers: Vec<_> = (0..WRITERS as u64)
            .map(|w| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    // Disjoint id ranges per writer; id 0 is skipped so
                    // "never written" can't alias a real record.
                    for i in 0..PER_WRITER {
                        let id = 1 + w * PER_WRITER + i;
                        ring.publish(&record_for(id));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        let seen = reader.join().unwrap();
        assert!(seen > 0, "the reader observed at least some records");

        // Consistency: every ticket either became a stable published
        // record or was dropped. After the writers join, head equals
        // the total publish count, the surviving slots re-derive from
        // their ids, and dropped ≤ head − surviving (each slot holds
        // the last undropped write it received).
        let total = WRITERS as u64 * PER_WRITER;
        assert_eq!(ring.head.load(Ordering::Relaxed), total);
        let survivors = ring.snapshot(usize::MAX);
        for record in &survivors {
            assert_eq!(*record, record_for(record.id), "settled slot is stable");
            assert!(record.id >= 1 && record.id <= total);
        }
        let dropped = ring.dropped();
        assert!(
            dropped <= total - survivors.len() as u64,
            "dropped ({dropped}) cannot exceed unpublished tickets \
             ({total} - {})",
            survivors.len()
        );
    }

    #[test]
    fn trace_filters_by_command_and_duration() {
        let obs = Obs::new(0, false, 1);
        let mut spans = PendingSpans::default();
        obs.note(
            &mut spans,
            CMD_CHECK,
            OUTCOME_OK,
            0xabc,
            Duration::from_micros(50),
            10,
            20,
        );
        obs.note(
            &mut spans,
            command_code("stats"),
            OUTCOME_OK,
            0,
            Duration::from_micros(5_000),
            30,
            40,
        );
        obs.publish_wake(&mut spans, Duration::ZERO);

        let all = obs.trace(10, None, 0);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].command, "stats"); // newest first
        assert_eq!(all[0].key, "");
        assert_eq!(all[1].key, "0000000000000abc");

        let checks = obs.trace(10, Some(CMD_CHECK), 0);
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].command, "check");
        assert_eq!(checks[0].outcome, "ok");
        assert_eq!(checks[0].bytes_in, 10);
        assert_eq!(checks[0].bytes_out, 20);

        let slow = obs.trace(10, None, 1_000);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].command, "stats");
    }
}
