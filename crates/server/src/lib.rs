//! # qid-server — a resident quasi-identifier audit service
//!
//! The paper's sampling bounds make the *query* side of
//! quasi-identifier discovery cheap: every ε-separation-key question is
//! answered from a `Θ(m/√ε)` tuple sample, not the data. The expensive
//! part — scanning the CSV and building the sample — therefore belongs
//! in a process that outlives a single query. This crate is that
//! process:
//!
//! * [`registry`] — a **dataset registry** mapping
//!   `(path, eps, seed) → cached artifacts` (the resident
//!   [`qid_core::filter::TupleSampleFilter`], plus the full dataset for
//!   memory-mode loads). Concurrent cold lookups collapse onto one
//!   build; repeated queries are cache hits.
//! * [`proto`] — the newline-delimited JSON wire protocol
//!   (`load`, `audit`, `key`, `check`, `mask`, `stats`, `metrics`,
//!   `shutdown`), hand-rolled over [`json`] because the build
//!   environment is offline (no serde).
//! * [`pool`] — a fixed worker thread pool over `mpsc` channels;
//!   shutdown drains in-flight work before the process exits.
//! * [`server`] — the `std::net::TcpListener` accept loop and request
//!   dispatch, with per-command [`metrics`].
//! * [`client`] — the thin blocking client the `qid query` CLI (and the
//!   benchmarks) use.
//!
//! Everything is `std`-only: no async runtime, no external crates.
//!
//! ## In-process quickstart
//!
//! ```no_run
//! use qid_server::{Client, Request, Server, ServerConfig};
//!
//! let server = Server::bind(&ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let running = server.spawn();
//! let mut client = Client::connect(addr).unwrap();
//! let reply = client
//!     .call(&Request::Key {
//!         ds: qid_server::DatasetRef {
//!             path: "data.csv".into(),
//!             eps: 0.001,
//!             seed: 7,
//!         },
//!     })
//!     .unwrap();
//! println!("{reply:?}");
//! client.call(&Request::Shutdown).unwrap();
//! running.join().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod proto;
pub mod registry;
pub mod resolve;
pub mod server;

pub use client::Client;
pub use pool::WorkerPool;
pub use proto::{DatasetRef, LoadMode, MetricsReport, Request, Response};
pub use registry::Registry;
pub use resolve::{resolve_attr_names, split_attr_spec, ResolvedAttrs};
pub use server::{handle_request, RunningServer, Server, ServerConfig, ServerState};
