//! # qid-server — a resident quasi-identifier audit service
//!
//! The paper's sampling bounds make the *query* side of
//! quasi-identifier discovery cheap: every ε-separation-key question is
//! answered from a `Θ(m/√ε)` tuple sample, not the data. The expensive
//! part — scanning the CSV and building the sample — therefore belongs
//! in a process that outlives a single query. This crate is that
//! process:
//!
//! * [`registry`] — the **registry lifecycle subsystem** mapping
//!   `(path, eps, seed) → cached artifacts`: the resident
//!   [`qid_core::filter::TupleSampleFilter`] (Theorem 1), per-column
//!   KMV distinct-count sketches (so `stats` answers without
//!   materialising), a lazily built
//!   [`qid_core::sketch::NonSeparationSketch`] (Theorem 2, behind the
//!   `sketch` command), and — for memory-mode loads — the full
//!   dataset. The cache is sharded by key hash (read hits take one
//!   shared lock), LRU-evicts under a configurable byte budget,
//!   persists built artifacts to a cache directory so restarts warm up
//!   without re-scanning sources, and stats the source file on every
//!   hit so in-place rewrites trigger a rebuild instead of a stale
//!   answer. Concurrent cold lookups (and cold sketch queries)
//!   collapse onto one build.
//! * [`proto`] — the newline-delimited JSON wire protocol
//!   (`load`, `audit`, `key`, `check`, `sketch`, `mask`, `stats`,
//!   `batch`, `unload`, `metrics`, `shutdown`), hand-rolled over
//!   [`json`] because the build environment is offline (no serde).
//!   `batch` carries an array of sub-commands on one line, answered as
//!   an array with one registry resolution per distinct dataset key.
//! * [`poller`] — the **sharded readiness-driven connection core**:
//!   `--pollers` shard threads (default `min(4, cores)`) each own a
//!   round-robin share of the idle connections in non-blocking mode
//!   behind a minimal vendored readiness shim (`epoll` on Linux,
//!   `kqueue` on the BSDs/macOS, `poll(2)` fallback) and hand only
//!   *readable* connections to the worker pool, so thousands of idle
//!   keep-alive clients cost zero worker time. Writes are
//!   readiness-driven too: a response the socket refuses is parked
//!   with the connection and finished by its owning shard when the
//!   peer drains — a slow reader costs `writes_parked` increments,
//!   never a blocked worker. The core also owns the
//!   protocol-hardening knobs for untrusted clients: a request-line
//!   byte cap (`--max-line-bytes`, structured `line_too_long` answer,
//!   `O(cap)` memory), a per-connection token-bucket request-rate
//!   limit (`--max-rps`, `rate_limited` answer before decoding), and
//!   an admission cap on live connections (`--max-conns`, one
//!   structured `too_busy` answer then close).
//! * [`fastpath`] — the **zero-allocation `check` path**: a byte-level
//!   scanner over the request line, a per-connection [`Scratch`]
//!   arena, a windowed-revalidation registry read
//!   ([`Registry::peek`]), and direct byte serialisation, so the
//!   steady-state request (a plain `check` over a resident entry)
//!   performs no heap allocation at all — proved by a
//!   counting-allocator test, not asserted by eye. Anything unusual
//!   bails to the general path, which stays the single authority for
//!   errors and edge cases.
//! * [`obs`] — the **flight recorder**: per-request trace spans
//!   captured into preallocated per-connection slots and published to
//!   a fixed-size lock-light ring (queryable live via the `trace`
//!   command), an optional `--metrics-addr` Prometheus text-format
//!   exposition listener (hand-rolled HTTP GET, no deps), and NDJSON
//!   slow-request (`--slow-ms`) and lifecycle-event (`--log-json`)
//!   logging on stderr. Instrumentation preserves the zero-allocation
//!   `check` fast-path contract — proved by the same counting-allocator
//!   test with tracing, slow detection, the metrics listener and two
//!   live poller shards all on.
//! * [`wal`] — the **durability tier**: a write-ahead journal of
//!   registry lifecycle events plus a periodic snapshot and a
//!   checksummed counter checkpoint under `--cache-dir`, fsync'd off
//!   the request path by a background flusher. On startup the journal
//!   is replayed: cumulative counters resume (dashboards survive
//!   restarts — `qid_restarts_total` counts prior lives), the previous
//!   resident set is eagerly re-admitted in preserved LRU order, and a
//!   journal without a clean-shutdown record is crash evidence that
//!   unlocks the immediate `*.tmp` orphan sweep. `qid wal <dir>`
//!   dumps/verifies the journal.
//! * [`pool`] — a fixed worker thread pool over `mpsc` channels;
//!   shutdown drains in-flight work before the process exits.
//! * [`server`] — the `std::net::TcpListener` accept loop and request
//!   dispatch, with per-command [`metrics`] including sliding-window
//!   log₂ latency histograms (server-side p50/p99 over the last 1–2
//!   epochs).
//! * [`client`] — the thin blocking client the `qid query` CLI (and the
//!   benchmarks) use.
//!
//! Everything is `std`-only: no async runtime, no external crates
//! beyond the vendored readiness shim.
//!
//! ## The wire protocol in one round trip
//!
//! One JSON object per line in each direction. The request names a
//! command and the registry cache key `(path, eps, seed)`; the response
//! echoes `ok`/`kind` plus the payload:
//!
//! ```
//! use qid_server::{Request, Response};
//!
//! // Parse what a client (or `echo … | nc`) would send:
//! let request = Request::decode(
//!     r#"{"cmd":"audit","path":"data.csv","eps":0.01,"seed":7,"max_key_size":2}"#,
//! )
//! .unwrap();
//! assert_eq!(request.command_name(), "audit");
//!
//! // And what the server answers:
//! let reply = Response::Audit {
//!     keys: vec![(vec!["zip".into(), "age".into()], 0.93)],
//! };
//! let line = reply.encode();
//! assert!(line.contains(r#""ok":true"#));
//! assert_eq!(Response::decode(&line).unwrap(), reply);
//! ```
//!
//! ## Theorem 2 on the wire: the `sketch` command
//!
//! `sketch` queries the registry-cached non-separation sketch for one
//! attribute set and returns the Γ-estimate, the raw pair count, the
//! stored sample size and the error bound. The sketch is built with
//! the protocol-fixed [`proto::sketch_params`] and the request's seed,
//! so a client can reproduce a served answer bit-for-bit with
//! [`qid_core::stream::sketch_from_stream`] on the same data:
//!
//! ```
//! use qid_server::{proto::sketch_params, Request, Response};
//!
//! let request = Request::decode(
//!     r#"{"cmd":"sketch","path":"data.csv","eps":0.01,"seed":7,"attrs":["zip","age"]}"#,
//! )
//! .unwrap();
//! assert_eq!(request.command_name(), "sketch");
//!
//! // A dense subset gets an estimate; a near-key answers "small".
//! let reply = Response::Sketch {
//!     attrs: vec!["zip".into(), "age".into()],
//!     estimate: Some(152_310.0), // Γ̂ ∈ (1±rel_error)·Γ w.h.p.
//!     raw_pairs: 1902,
//!     sample_pairs: 4159,
//!     alpha: sketch_params().alpha,
//!     rel_error: sketch_params().eps,
//!     k: sketch_params().k,
//! };
//! let line = reply.encode();
//! assert!(line.contains(r#""kind":"sketch""#));
//! assert!(line.contains(r#""small":false"#));
//! assert_eq!(Response::decode(&line).unwrap(), reply);
//! ```
//!
//! ## In-process quickstart
//!
//! ```no_run
//! use qid_server::{Client, Request, Server, ServerConfig};
//!
//! let server = Server::bind(&ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let running = server.spawn();
//! let mut client = Client::connect(addr).unwrap();
//! let reply = client
//!     .call(&Request::Key {
//!         ds: qid_server::DatasetRef {
//!             path: "data.csv".into(),
//!             eps: 0.001,
//!             seed: 7,
//!         },
//!     })
//!     .unwrap();
//! println!("{reply:?}");
//! client.call(&Request::Shutdown).unwrap();
//! running.join().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod fastpath;
pub mod json;
pub mod metrics;
pub mod obs;
pub mod poller;
pub mod pool;
pub mod proto;
pub mod registry;
pub mod resolve;
pub mod server;
pub mod wal;

pub use client::Client;
pub use fastpath::Scratch;
pub use obs::BUILD_VERSION;
pub use poller::backend_name;
pub use pool::WorkerPool;
pub use proto::{sketch_params, DatasetRef, LoadMode, MetricsReport, Request, Response, TraceSpan};
pub use registry::{CacheKey, Registry, RegistryConfig, RegistrySnapshot};
pub use resolve::{resolve_attr_names, split_attr_spec, ResolvedAttrs};
pub use server::{
    handle_request, RunningServer, Server, ServerConfig, ServerState, DEFAULT_MAX_LINE_BYTES,
    DEFAULT_REVALIDATE_MS,
};
