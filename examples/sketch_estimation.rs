//! Non-separation estimation (Theorem 2) next to exact ground truth:
//! build the sketch at a few accuracy levels and watch the estimates
//! tighten as `ε` shrinks (sample grows as `1/ε²`).
//!
//! Run with `cargo run --release --example sketch_estimation`.

use quasi_id::prelude::*;

fn main() {
    let ds = adult_like(77);
    let oracle = ExactOracle::new(&ds);
    let schema = ds.schema();
    println!(
        "Adult shape: {} rows x {} attributes\n",
        ds.n_rows(),
        ds.n_attrs()
    );

    let subsets: Vec<(&str, Vec<&str>)> = vec![
        ("race alone", vec!["race"]),
        ("sex + race", vec!["sex", "race"]),
        (
            "education + marital-status",
            vec!["education", "marital-status"],
        ),
        ("age + workclass", vec!["age", "workclass"]),
    ];
    let resolve = |names: &[&str]| -> Vec<AttrId> {
        names
            .iter()
            .map(|n| schema.attr_by_name(n).expect("known attribute"))
            .collect()
    };

    for &eps in &[0.3, 0.1, 0.03] {
        let params = SketchParams::new(0.01, eps, 4);
        let sketch = NonSeparationSketch::build(&ds, params, 13);
        println!("eps = {eps}: sketch stores {} pairs", sketch.sample_size());
        for (label, names) in &subsets {
            let attrs = resolve(names);
            let exact = oracle.unseparated(&attrs) as f64;
            match sketch.query(&attrs) {
                SketchAnswer::Estimate(est) => {
                    let rel = (est - exact).abs() / exact.max(1.0);
                    println!(
                        "  {label:<28} exact {exact:>14.0}  est {est:>14.0}  rel.err {rel:.3}"
                    );
                }
                SketchAnswer::Small => {
                    println!("  {label:<28} exact {exact:>14.0}  est: (small)");
                }
            }
        }
        println!();
    }
    println!("sample grows as 1/eps²; estimates tighten accordingly (Theorem 2).");
}
