//! Quickstart: build a data set, test attribute subsets with both
//! filters, and find a small ε-separation key.
//!
//! Run with `cargo run --release --example quickstart`.

use quasi_id::core::minkey::GreedyRefineMinKey;
use quasi_id::prelude::*;

fn main() {
    // A synthetic "customers" table: 50,000 rows, 6 attributes.
    let ds = quasi_id::dataset::generator::DatasetSpec::new(50_000)
        .column(
            "customer_id",
            quasi_id::dataset::generator::ColumnSpec::RowId,
        )
        .column(
            "zip",
            quasi_id::dataset::generator::ColumnSpec::Zipf {
                cardinality: 900,
                exponent: 0.8,
            },
        )
        .column(
            "age",
            quasi_id::dataset::generator::ColumnSpec::Zipf {
                cardinality: 75,
                exponent: 0.3,
            },
        )
        .column(
            "sex",
            quasi_id::dataset::generator::ColumnSpec::Binary { p_one: 0.5 },
        )
        .column(
            "plan",
            quasi_id::dataset::generator::ColumnSpec::Zipf {
                cardinality: 5,
                exponent: 1.5,
            },
        )
        .column(
            "signup_day",
            quasi_id::dataset::generator::ColumnSpec::Uniform { cardinality: 3_650 },
        )
        .generate(42)
        .expect("valid spec");
    println!(
        "data set: {} rows x {} attributes",
        ds.n_rows(),
        ds.n_attrs()
    );

    // Build both ε-separation key filters (ε = 0.001).
    let params = FilterParams::new(0.001);
    let tuple_filter = TupleSampleFilter::build(&ds, params, 7);
    let pair_filter = PairSampleFilter::build(&ds, params, 7);
    println!(
        "samples: {} tuples (this paper) vs {} pairs (Motwani-Xu)",
        tuple_filter.sample_size(),
        pair_filter.sample_size(),
    );

    // Query a few subsets by name.
    let schema = ds.schema();
    let by_names = |names: &[&str]| -> Vec<AttrId> {
        names
            .iter()
            .map(|n| schema.attr_by_name(n).expect("known attribute"))
            .collect()
    };
    for subset in [
        vec!["customer_id"],
        vec!["sex", "plan"],
        vec!["zip", "age", "sex"],
        vec!["zip", "age", "sex", "signup_day"],
    ] {
        let attrs = by_names(&subset);
        let ours = tuple_filter.query(&attrs);
        let mx = pair_filter.query(&attrs);
        println!("{subset:?}: ours = {ours:?}, Motwani-Xu = {mx:?}");
    }

    // Find a small quasi-identifier greedily (Proposition 1).
    let result = GreedyRefineMinKey::new(params).run(&ds, 11);
    let names: Vec<&str> = result
        .attrs
        .iter()
        .map(|&a| schema.attr(a).name())
        .collect();
    let oracle = ExactOracle::new(&ds);
    println!(
        "greedy eps-separation key: {names:?} (separates {:.4}% of pairs)",
        100.0 * oracle.separation_ratio(&result.attrs)
    );
}
