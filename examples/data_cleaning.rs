//! Data cleaning: spotting noisy functional dependencies and fuzzy
//! duplicates with non-separation estimates (the paper's §1
//! applications: "identifying and removing fuzzy duplicates", "finding
//! dependencies or keys in noisy data").
//!
//! Run with `cargo run --release --example data_cleaning`.

use quasi_id::dataset::generator::{ColumnSpec, DatasetSpec, SourceRef};
use quasi_id::prelude::*;

fn main() {
    // A product catalog with a dirty import: `vendor_code` is supposed
    // to determine `vendor_name` (a functional dependency), but 2% of
    // rows were mistyped; `sku` should be unique but an ingestion bug
    // duplicated some rows' identifying columns.
    let n = 100_000;
    let ds = DatasetSpec::new(n)
        .column(
            "sku",
            ColumnSpec::Uniform {
                cardinality: (n as u64) * 9 / 10,
            },
        )
        .column(
            "vendor_code",
            ColumnSpec::Zipf {
                cardinality: 120,
                exponent: 1.0,
            },
        )
        .column(
            "vendor_name",
            ColumnSpec::NoisyCopy {
                source: SourceRef::Column(1),
                flip_prob: 0.02,
                cardinality: 120,
            },
        )
        .column(
            "category",
            ColumnSpec::Zipf {
                cardinality: 40,
                exponent: 1.3,
            },
        )
        .column(
            "price_cents",
            ColumnSpec::Uniform {
                cardinality: 20_000,
            },
        )
        .generate(9)
        .expect("valid spec");
    let schema = ds.schema();
    println!(
        "catalog: {} rows x {} attributes\n",
        ds.n_rows(),
        ds.n_attrs()
    );

    let a = |name: &str| schema.attr_by_name(name).expect("known attribute");

    // A sketch answers all the following from ~one small sample.
    let sketch = NonSeparationSketch::build(&ds, SketchParams::new(0.0001, 0.15, 3), 4);
    println!("sketch holds {} pairs\n", sketch.sample_size());

    // 1. Is `sku` unique? Estimate its non-separation mass.
    match sketch.query(&[a("sku")]) {
        SketchAnswer::Small => println!("sku: collision mass below threshold — near-unique ✓"),
        SketchAnswer::Estimate(g) => {
            println!("sku: ~{g:.0} unseparated pairs — duplicated identifiers, deduplicate!")
        }
    }

    // 2. Noisy FD check: vendor_code → vendor_name should make
    //    {code} and {code, name} separate (almost) the same pairs.
    let code = ExactOracle::new(&ds).unseparated(&[a("vendor_code")]);
    let both = ExactOracle::new(&ds).unseparated(&[a("vendor_code"), a("vendor_name")]);
    let violation = 1.0 - both as f64 / code as f64;
    println!(
        "vendor_code → vendor_name: {:.2}% of co-grouped pairs violate the FD (dirty rows)",
        100.0 * violation
    );

    // 3. Which columns to fix first? Rank by non-separation mass.
    println!("\nnon-separation mass per column (bigger = less identifying):");
    let mut ranked: Vec<(String, f64)> = (0..ds.n_attrs())
        .map(|i| {
            let attr = AttrId::new(i);
            let mass = match sketch.query(&[attr]) {
                SketchAnswer::Estimate(g) => g,
                SketchAnswer::Small => 0.0,
            };
            (schema.attr(attr).name().to_string(), mass)
        })
        .collect();
    ranked.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite"));
    for (name, mass) in ranked {
        println!("  {name:<12} ~{mass:>14.0} unseparated pairs");
    }
}
