//! Privacy audit: find small quasi-identifiers in a census-style table
//! and quantify linking-attack risk — the paper's §1 motivation.
//!
//! An adversary who can buy a few attribute values wants the *cheapest*
//! set that re-identifies most people. This audit reports:
//! 1. every minimal key of a sampled view (the full re-identifiers);
//! 2. the greedy small ε-separation key (quasi-identifier);
//! 3. per-subset re-identification rates (fraction of uniquely
//!    identified rows).
//!
//! Run with `cargo run --release --example privacy_audit`.

use quasi_id::core::minkey::{enumerate_minimal_keys, GreedyRefineMinKey, LatticeConfig};
use quasi_id::core::separation::group_sizes;
use quasi_id::prelude::*;

fn main() {
    // Adult-shaped census data (32,561 rows, 14 attributes).
    let ds = adult_like(2024);
    let schema = ds.schema();
    println!(
        "auditing {} rows x {} attributes (UCI Adult shape)\n",
        ds.n_rows(),
        ds.n_attrs()
    );

    // Work on a Θ(m/√ε)-tuple sample: the paper's guarantee says keys
    // of the sample are ε-separation keys of the full table w.h.p.
    let eps = 0.001;
    let params = FilterParams::new(eps);
    let filter = TupleSampleFilter::build(&ds, params, 5);
    let sample = filter.sample().clone();
    println!(
        "sampled {} tuples (eps = {eps}); auditing the sample gives 1-e^-m guarantees\n",
        sample.n_rows()
    );

    // 1. All minimal keys up to 3 attributes on the sample.
    let keys = enumerate_minimal_keys(
        &sample,
        LatticeConfig {
            max_size: 3,
            max_candidates: 100_000,
        },
    );
    println!("minimal quasi-identifiers (≤ 3 attributes) on the sample:");
    for key in keys.iter().take(10) {
        let names: Vec<&str> = key.iter().map(|&a| schema.attr(a).name()).collect();
        println!("  {names:?}");
    }
    if keys.len() > 10 {
        println!("  … and {} more", keys.len() - 10);
    }

    // 2. The greedy small quasi-identifier.
    let greedy = GreedyRefineMinKey::run_on_sample(&sample);
    let names: Vec<&str> = greedy
        .attrs
        .iter()
        .map(|&a| schema.attr(a).name())
        .collect();
    println!("\ngreedy quasi-identifier: {names:?}");

    // 3. Re-identification rates on the FULL data set for interesting
    //    subsets: fraction of rows whose projection is unique.
    println!("\nre-identification rates (full data):");
    let subsets: Vec<Vec<AttrId>> = std::iter::once(greedy.attrs.clone())
        .chain(keys.iter().take(4).cloned())
        .collect();
    for attrs in subsets {
        let names: Vec<&str> = attrs.iter().map(|&a| schema.attr(a).name()).collect();
        let sizes = group_sizes(&ds, &attrs);
        let unique = sizes.iter().filter(|&&s| s == 1).count();
        let rate = 100.0 * unique as f64 / ds.n_rows() as f64;
        println!("  {names:?}: {unique} rows uniquely identified ({rate:.1}%)");
    }

    println!(
        "\nany attacker holding those attributes can link that share of\n\
         records to external data — mask or coarsen them before release."
    );

    // 4. Produce the masking plan: what to suppress so that no
    //    quasi-identifier with ≤ 2 attributes survives.
    let plan = quasi_id::core::masking::plan_masking(&ds, params, 2, 17);
    let suppressed: Vec<&str> = plan
        .suppressed
        .iter()
        .map(|&a| schema.attr(a).name())
        .collect();
    println!("\nmasking plan against 2-attribute adversaries: suppress {suppressed:?}");
    match plan.residual_key_size {
        Some(s) => println!("after suppression the smallest quasi-identifier has {s} attributes"),
        None => println!("after suppression nothing identifying remains"),
    }
}
