//! Streaming: build both filters and the sketch in ONE pass over a
//! tuple stream, then answer queries after the stream is gone.
//!
//! The paper: "sampling pairs of tuples can easily be implemented in the
//! streaming model and the space would be proportional to the number of
//! samples." Here the "stream" is a generator-backed source, but any
//! `TupleSource` (e.g. a CSV reader) works identically.
//!
//! Run with `cargo run --release --example streaming_filter`.

use quasi_id::core::filter::SeparationFilter;
use quasi_id::core::stream::{
    pair_filter_from_stream, sketch_from_stream, tuple_filter_from_stream,
};
use quasi_id::dataset::DatasetTupleSource;
use quasi_id::prelude::*;

fn main() {
    // The "stream": 200k covtype-shaped rows.
    let ds = quasi_id::dataset::generator::covtype_like_scaled(3, 200_000);
    println!(
        "streaming {} tuples x {} attributes …",
        ds.n_rows(),
        ds.n_attrs()
    );

    let eps = 0.001;
    let params = FilterParams::new(eps);

    // One pass per sketch (a real deployment would fuse these into a
    // single pass; each holds O(sample) memory).
    let tuple_filter = {
        let mut stream = DatasetTupleSource::new(&ds);
        tuple_filter_from_stream(&mut stream, params, 7).expect("stream is clean")
    };
    let pair_filter = {
        let mut stream = DatasetTupleSource::new(&ds);
        pair_filter_from_stream(&mut stream, params, 7).expect("stream is clean")
    };
    let sketch = {
        let mut stream = DatasetTupleSource::new(&ds);
        sketch_from_stream(&mut stream, SketchParams::new(0.05, 0.1, 4), 7)
            .expect("stream is clean")
    };

    println!(
        "held {} tuples / {} pairs / {} sketch pairs in memory ({} / {} / {} KiB)\n",
        tuple_filter.sample_size(),
        pair_filter.sample_size(),
        sketch.sample_size(),
        tuple_filter.stored_bytes() / 1024,
        pair_filter.stored_bytes() / 1024,
        sketch.stored_bytes() / 1024,
    );

    // The original data set can now be dropped; queries run on sketches.
    let schema = ds.schema();
    let subsets: Vec<(&str, Vec<AttrId>)> = vec![
        (
            "elevation alone",
            vec![schema.attr_by_name("elevation").unwrap()],
        ),
        (
            "all wilderness indicators",
            (10..14).map(AttrId::new).collect(),
        ),
        (
            "elevation + aspect + slope",
            (0..3).map(AttrId::new).collect(),
        ),
    ];
    for (label, attrs) in &subsets {
        println!(
            "{label}: ours = {:?}, Motwani-Xu = {:?}, non-separation ≈ {:?}",
            tuple_filter.query(attrs),
            pair_filter.query(attrs),
            sketch.query(attrs),
        );
    }
}
