//! Integration: the masking extension end-to-end on generated census
//! data — audit finds quasi-identifiers, masking destroys them,
//! re-audit confirms.

use quasi_id::core::masking::plan_masking;
use quasi_id::core::minkey::{enumerate_minimal_keys, GreedyRefineMinKey, LatticeConfig};
use quasi_id::prelude::*;

#[test]
fn mask_then_reaudit_adult_shape() {
    let ds = adult_like(31);
    let eps = 0.001;
    let params = FilterParams::new(eps);

    // Masking against 1-attribute adversaries.
    let plan = plan_masking(&ds, params, 1, 5);

    // fnlwgt (≈ unique weights) must be one of the suppressed columns —
    // it is the only near-key singleton in the Adult shape.
    let fnlwgt = ds.schema().attr_by_name("fnlwgt").unwrap();
    assert!(
        plan.suppressed.contains(&fnlwgt),
        "fnlwgt survived masking: {:?}",
        plan.suppressed
    );

    // Re-audit against FULL-data ground truth: no released attribute
    // may ε-separate on its own (that is exactly what a 1-attribute
    // linking adversary exploits).
    let oracle = ExactOracle::new(&ds);
    for &a in &plan.released {
        let ratio = oracle.separation_ratio(&[a]);
        assert!(
            ratio < 1.0 - eps,
            "released attribute {} still separates {:.5} of pairs",
            ds.schema().attr(a).name(),
            ratio
        );
    }

    // And the sampled view agrees: no exact singleton key either.
    let released = ds.project(&plan.released);
    let filter = TupleSampleFilter::build(&released, params, 99);
    let sample = filter.sample().clone();
    let keys = enumerate_minimal_keys(
        &sample,
        LatticeConfig {
            max_size: 1,
            max_candidates: 10_000,
        },
    );
    assert!(
        keys.is_empty(),
        "released view still has singleton keys: {keys:?}"
    );
}

#[test]
fn masking_budget_monotone() {
    // A larger adversary budget can only force more suppression.
    let ds = adult_like(32);
    let params = FilterParams::new(0.001);
    let s1 = plan_masking(&ds, params, 1, 7).suppressed.len();
    let s2 = plan_masking(&ds, params, 2, 7).suppressed.len();
    assert!(s2 >= s1, "budget 2 suppressed {s2} < budget 1's {s1}");
}

#[test]
fn masking_reports_residual_key() {
    let ds = adult_like(33);
    let params = FilterParams::new(0.001);
    let plan = plan_masking(&ds, params, 1, 11);
    // If a residual key size is reported, verify it really exceeds the
    // budget by running the greedy on the released view.
    if let Some(size) = plan.residual_key_size {
        assert!(size > 1);
        let view = ds.project(&plan.released);
        let greedy = GreedyRefineMinKey::new(params).run(&view, 13);
        if greedy.complete {
            assert!(
                greedy.key_size() > 1,
                "released view has a singleton key after masking"
            );
        }
    }
}
