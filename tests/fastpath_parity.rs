//! Fast-path/general-path parity.
//!
//! The zero-allocation `check` path is only allowed to exist because
//! it is *observationally invisible*: any line it answers must get
//! byte-identical output to the general decode → dispatch → encode
//! path, and any line it is unsure about it must bail on (the general
//! path stays the single authority for errors and edge cases).
//!
//! This suite drives the same request lines through two in-process
//! servers over the same dataset — one with the fast path enabled
//! (a large `revalidate_ms` window), one with it disabled
//! (`revalidate_ms: 0`) — and asserts the response bytes agree on
//! every line: fast-path hits, deliberate bails, and outright errors.

use quasi_id::server::{Scratch, Server, ServerConfig, ServerState};
use std::sync::Arc;

/// Binds a throwaway server (no threads — `answer_line` is driven
/// directly) and loads the shared dataset into its registry.
fn server_with_window(revalidate_ms: u64, path: &str) -> Arc<ServerState> {
    let server = Server::bind(&ServerConfig {
        workers: 1,
        revalidate_ms,
        ..ServerConfig::default()
    })
    .expect("bind");
    let state = server.state();
    let mut scratch = Scratch::new();
    let mut out = Vec::new();
    let load = format!(r#"{{"cmd":"load","path":"{path}","eps":0.01,"seed":7}}"#);
    state.answer_line(load.as_bytes(), &mut scratch, &mut out);
    assert!(
        out.starts_with(br#"{"ok":true,"kind":"loaded""#),
        "load failed: {}",
        String::from_utf8_lossy(&out)
    );
    state
}

#[test]
fn fastpath_answers_are_byte_identical_to_the_general_path() {
    let dir = std::env::temp_dir().join("qid-fastpath-parity");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("people.csv");
    let mut csv = String::from("zip,age,sex,job\n");
    for i in 0..400 {
        csv.push_str(&format!(
            "{:05},{},{},job{}\n",
            i % 83,
            18 + i % 55,
            i % 2,
            i % 5
        ));
    }
    std::fs::write(&path, csv).expect("write csv");
    let path = path.to_str().expect("utf-8 path");

    let fast = server_with_window(3_600_000, path);
    let general = server_with_window(0, path);

    // Every shape the scanner must either serve identically or bail
    // on: plain hits (varying key order, whitespace, defaults,
    // positional attrs, duplicates), deliberate bails (string seed,
    // scientific eps, escapes, unknown keys/attrs, non-string attrs),
    // and lines that error on both sides.
    let lines = [
        // Fast-path hits.
        format!(r#"{{"cmd":"check","path":"{path}","eps":0.01,"seed":7,"attrs":["zip","age"]}}"#),
        format!(r#"{{"cmd":"check","path":"{path}","eps":0.01,"seed":7,"attrs":["sex"]}}"#),
        format!(r#"{{"attrs":["age","zip"],"seed":7,"eps":0.01,"path":"{path}","cmd":"check"}}"#),
        format!(r#"  {{ "cmd" : "check" , "path" : "{path}" , "attrs" : [ "zip" ] }}  "#),
        format!(r#"{{"cmd":"check","path":"{path}","attrs":[]}}"#),
        format!(r#"{{"cmd":"check","path":"{path}","eps":0.01,"seed":7,"attrs":["0","1"]}}"#),
        format!(
            r#"{{"cmd":"check","path":"{path}","eps":0.01,"seed":7,"attrs":["zip","zip","age"]}}"#
        ),
        format!(r#"{{"cmd":"check","path":"{path}","eps":0.5,"seed":7,"attrs":["zip"]}}"#),
        // Bails the fast path must hand to the general parser.
        format!(r#"{{"cmd":"check","path":"{path}","eps":0.01,"seed":"7","attrs":["zip"]}}"#),
        format!(r#"{{"cmd":"check","path":"{path}","eps":1e-2,"seed":7,"attrs":["zip"]}}"#),
        format!(r#"{{"cmd":"check","path":"{path}","eps":0.01,"seed":-1,"attrs":["zip"]}}"#),
        format!(r#"{{"cmd":"check","path":"{path}","attrs":["zip"],"extra":1}}"#),
        format!(r#"{{"cmd":"check","path":"{path}","attrs":["nope"]}}"#),
        format!(r#"{{"cmd":"check","path":"{path}","attrs":[0,1]}}"#),
        format!(r#"{{"cmd":"check","path":"{path}","attrs":["zip"]}}"#),
        format!(r#"{{"cmd":"check","path":"{path}","attrs":["zip"]}} trailing"#),
        // Errors on both sides.
        r#"{"cmd":"check","attrs":["zip"]}"#.to_string(),
        r#"{"cmd":"check","path":"/definitely/missing.csv","attrs":["zip"]}"#.to_string(),
        r#"{"cmd":"explode"}"#.to_string(),
        r#"not json"#.to_string(),
        // Other commands, untouched by the fast path.
        format!(r#"{{"cmd":"stats","path":"{path}","eps":0.01,"seed":7}}"#),
        format!(
            r#"{{"cmd":"batch","requests":[{{"cmd":"check","path":"{path}","eps":0.01,"seed":7,"attrs":["zip"]}}]}}"#
        ),
    ];

    let mut fast_scratch = Scratch::new();
    let mut general_scratch = Scratch::new();
    let (mut fast_out, mut general_out) = (Vec::new(), Vec::new());
    for line in &lines {
        fast_out.clear();
        general_out.clear();
        fast.answer_line(line.as_bytes(), &mut fast_scratch, &mut fast_out);
        general.answer_line(line.as_bytes(), &mut general_scratch, &mut general_out);
        assert_eq!(
            String::from_utf8_lossy(&fast_out),
            String::from_utf8_lossy(&general_out),
            "fast/general responses diverge on line: {line}"
        );
        assert!(!fast_out.is_empty(), "no response at all for line: {line}");
    }

    // And the repeated-hit path (memo warm) stays identical too.
    let hot = format!(
        r#"{{"cmd":"check","path":"{path}","eps":0.01,"seed":7,"attrs":["zip","age","sex"]}}"#
    );
    let mut reference: Option<Vec<u8>> = None;
    for _ in 0..50 {
        fast_out.clear();
        general_out.clear();
        fast.answer_line(hot.as_bytes(), &mut fast_scratch, &mut fast_out);
        general.answer_line(hot.as_bytes(), &mut general_scratch, &mut general_out);
        assert_eq!(fast_out, general_out, "hot-loop divergence");
        match &reference {
            Some(bytes) => assert_eq!(bytes, &fast_out, "answer drifted across repeats"),
            None => reference = Some(fast_out.clone()),
        }
    }
}
