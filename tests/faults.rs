//! Fault-injection suite for the connection core: hostile or unlucky
//! peers — slow readers that never drain, mid-response RSTs, half-open
//! clients, and a herd that dies at once — must never pin a worker,
//! poison a poller shard, or leak a connection slot.
//!
//! Each test spawns the real `qid serve` binary and attacks it over
//! raw TCP, then proves liveness from the outside: a healthy
//! connection keeps answering within a tight budget, and the
//! per-shard `poller_connections` gauges show the damage was reaped.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use quasi_id::server::proto::{Request, Response};
use quasi_id::server::{Client, MetricsReport};

/// A `qid serve` child process bound to an ephemeral port.
struct ServerUnderTest {
    child: Child,
    addr: String,
}

impl ServerUnderTest {
    /// Spawns the server with extra `qid serve` flags and parses the
    /// bound address off its announce line.
    fn spawn_with(workers: usize, extra: &[&str]) -> ServerUnderTest {
        let mut child = Command::new(env!("CARGO_BIN_EXE_qid"))
            .args(["serve", "--addr", "127.0.0.1:0", "--workers"])
            .arg(workers.to_string())
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .expect("server spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut first_line = String::new();
        BufReader::new(stdout)
            .read_line(&mut first_line)
            .expect("server announces its address");
        let addr = first_line
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unparseable announce line: {first_line:?}"))
            .to_string();
        ServerUnderTest { child, addr }
    }

    fn client(&self) -> Client {
        Client::connect_timeout(self.addr.as_str(), Duration::from_secs(30))
            .expect("client connects")
    }

    fn raw(&self) -> TcpStream {
        TcpStream::connect(self.addr.as_str()).expect("raw stream connects")
    }

    /// Requests shutdown and waits for a clean exit — a poisoned
    /// poller or a deadlocked drain fails here.
    fn shutdown(mut self) {
        let mut client = self.client();
        assert_eq!(
            client.call(&Request::Shutdown).expect("shutdown answered"),
            Response::ShuttingDown
        );
        let status = self.child.wait().expect("server exits");
        assert!(status.success(), "server exit status: {status:?}");
    }
}

impl Drop for ServerUnderTest {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn metrics(client: &mut Client) -> MetricsReport {
    match client.call(&Request::Metrics).expect("metrics answered") {
        Response::Metrics(report) => report,
        other => panic!("expected metrics, got {other:?}"),
    }
}

/// One `metrics` request line in wire form. The response is ~50x the
/// request, which makes `metrics` a convenient amplification gadget
/// for filling a victim's socket buffers.
fn metrics_line() -> Vec<u8> {
    let mut line = Request::Metrics.encode().into_bytes();
    line.push(b'\n');
    line
}

/// Writes as much of `bytes` as the kernel will take without
/// blocking and returns the count. A stalled peer must not stall the
/// test either.
fn burst_nonblocking(mut stream: &TcpStream, bytes: &[u8]) -> usize {
    stream.set_nonblocking(true).expect("nonblocking");
    let mut sent = 0;
    while sent < bytes.len() {
        match stream.write(&bytes[sent..]) {
            Ok(0) => break,
            Ok(n) => sent += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) => panic!("burst write failed: {e}"),
        }
    }
    sent
}

/// Polls `check` every 25 ms until it passes or 30 s elapse.
fn wait_until(what: &str, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if check() {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// A reader that never drains must park the response with its
/// connection, not pin the (only) worker: a healthy connection keeps
/// answering well inside the old 10 s blocking-write budget.
#[test]
fn slow_reader_parks_the_write_and_frees_the_worker() {
    // ONE worker: if the stalled flush blocked it, every other
    // request on the server would stall behind it.
    let server = ServerUnderTest::spawn_with(1, &["--pollers", "1"]);

    let slow = server.raw();
    // Clamp the receive window before any response bytes flow, then
    // never read: the server's flush must hit WouldBlock.
    polling::set_recv_buffer(&slow, 4096).expect("shrink client rcvbuf");
    let burst: Vec<u8> = metrics_line()
        .iter()
        .copied()
        .cycle()
        .take(metrics_line().len() * 30_000)
        .collect();
    let sent = burst_nonblocking(&slow, &burst);
    assert!(sent > 0, "burst must enqueue at least one request");

    // The park shows up in the metrics the healthy connection serves
    // — which is itself the liveness proof in miniature.
    let mut healthy = server.client();
    wait_until("a parked write", || metrics(&mut healthy).writes_parked > 0);

    // With the write parked the single worker is free: a healthy
    // request answers in well under the 100 ms liveness budget.
    // (Take the best of five to keep scheduler noise out of CI.)
    let best = (0..5)
        .map(|_| {
            let started = Instant::now();
            let _ = metrics(&mut healthy);
            started.elapsed()
        })
        .min()
        .unwrap();
    assert!(
        best < Duration::from_millis(100),
        "healthy request stalled behind a slow reader: {best:?}"
    );

    // Hanging up the slow reader errors the parked flush; the poller
    // reaps the connection and the server drains cleanly.
    drop(slow);
    wait_until("the slow reader to be reaped", || {
        metrics(&mut healthy).poller_connections.iter().sum::<u64>() <= 1
    });
    drop(healthy);
    server.shutdown();
}

/// A peer that resets the connection mid-response (SO_LINGER 0 → RST
/// while the flush is parked) is reaped without poisoning its poller
/// shard: the gauge returns to baseline and the server drains.
#[test]
fn rst_mid_response_reaps_the_connection_without_poisoning_the_poller() {
    let server = ServerUnderTest::spawn_with(2, &["--pollers", "1"]);
    let mut healthy = server.client();

    for round in 0..3 {
        let victim = server.raw();
        polling::set_recv_buffer(&victim, 4096).expect("shrink victim rcvbuf");
        let burst: Vec<u8> = metrics_line()
            .iter()
            .copied()
            .cycle()
            .take(metrics_line().len() * 30_000)
            .collect();
        burst_nonblocking(&victim, &burst);
        // Wait for the response to be in flight (first byte readable),
        // then reset instead of closing: the parked flush must take
        // the error path, not the graceful-EOF one.
        victim
            .set_nonblocking(false)
            .and_then(|()| victim.set_read_timeout(Some(Duration::from_secs(10))))
            .expect("restore blocking reads");
        let mut first = [0u8; 1];
        (&victim)
            .read_exact(&mut first)
            .unwrap_or_else(|e| panic!("round {round}: no response byte before RST: {e}"));
        polling::set_linger_zero(&victim).expect("arm RST");
        drop(victim);

        wait_until("the RST victim to be reaped", || {
            metrics(&mut healthy).poller_connections.iter().sum::<u64>() <= 1
        });
    }

    // Three resets later the shard still serves and drains cleanly.
    assert!(metrics(&mut healthy).connections >= 4);
    drop(healthy);
    server.shutdown();
}

/// A half-open client (shutdown of its write side) gets its final
/// request answered before the connection is reaped — whether the
/// line was newline-terminated or surrendered as an EOF tail. Neither
/// variant wedges the server.
#[test]
fn half_open_clients_get_the_tail_answered_then_reaped() {
    let server = ServerUnderTest::spawn_with(2, &["--pollers", "1"]);

    // Newline-terminated final line: answered, then EOF.
    let tail = server.raw();
    tail.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    (&tail)
        .write_all(&metrics_line())
        .expect("send tail request");
    tail.shutdown(Shutdown::Write).expect("half-close");
    let mut reader = BufReader::new(&tail);
    let mut line = String::new();
    reader.read_line(&mut line).expect("tail answered");
    assert!(
        line.contains("\"metrics\""),
        "expected a metrics response, got {line:?}"
    );
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("clean EOF");
    assert!(rest.is_empty(), "unexpected trailing bytes: {rest:?}");

    // Unterminated final line: the EOF tail is still a request.
    let torso = server.raw();
    torso
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let unterminated = Request::Metrics.encode().into_bytes();
    (&torso).write_all(&unterminated).expect("send EOF tail");
    torso.shutdown(Shutdown::Write).expect("half-close");
    let mut reader = BufReader::new(&torso);
    let mut line = String::new();
    reader.read_line(&mut line).expect("EOF tail answered");
    assert!(
        line.contains("\"metrics\""),
        "expected the EOF tail to be answered, got {line:?}"
    );
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("clean EOF");
    assert!(rest.is_empty(), "unexpected trailing bytes: {rest:?}");

    let mut healthy = server.client();
    wait_until("both half-open clients to be reaped", || {
        metrics(&mut healthy).poller_connections.iter().sum::<u64>() <= 1
    });
    drop(healthy);
    server.shutdown();
}

/// Killing an entire herd of connections at once leaves the surviving
/// connections on BOTH shards intact and answering: reaping one
/// shard's casualties never disturbs the other shard's conns.
#[test]
fn killing_a_connection_herd_leaves_both_shards_flat() {
    let server = ServerUnderTest::spawn_with(2, &["--pollers", "2"]);

    // Six survivors first (round-robined 3 per shard), then the herd.
    let mut keeps: Vec<Client> = (0..6).map(|_| server.client()).collect();
    let herd: Vec<TcpStream> = (0..6).map(|_| server.raw()).collect();
    wait_until("all twelve connections to be accepted", || {
        metrics(&mut keeps[0]).connections >= 12
    });

    drop(herd);

    // Every survivor still answers, and the per-shard gauges settle
    // on exactly the survivors — spread across both shards.
    wait_until("the herd to be reaped and survivors to hold", || {
        for keep in &mut keeps {
            let _ = metrics(keep);
        }
        let report = metrics(&mut keeps[0]);
        let shards = &report.poller_connections;
        shards.len() == 2 && shards.iter().sum::<u64>() == 6 && shards.iter().all(|&n| n >= 2)
    });

    drop(keeps);
    server.shutdown();
}

/// `--max-conns` admission control: the connection over the cap gets
/// a structured `too_busy` and a close instead of a worker, the
/// rejection is counted, and closing an admitted connection frees its
/// slot for the next comer.
#[test]
fn admission_cap_rejects_with_too_busy_and_recovers_on_close() {
    let server = ServerUnderTest::spawn_with(2, &["--max-conns", "3", "--pollers", "1"]);

    // Fill the cap and prove all three are admitted and answering.
    let mut admitted: Vec<Client> = (0..3).map(|_| server.client()).collect();
    for client in &mut admitted {
        let _ = metrics(client);
    }

    // The fourth gets the structured rejection, then EOF.
    let rejected = server.raw();
    rejected
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut line = String::new();
    BufReader::new(&rejected)
        .read_line(&mut line)
        .expect("rejection line");
    assert!(
        line.contains("\"too_busy\"") && line.contains('3'),
        "expected a too_busy rejection naming the cap, got {line:?}"
    );
    assert!(metrics(&mut admitted[0]).rejected_busy >= 1);

    // Closing one admitted connection frees the slot.
    drop(admitted.pop());
    wait_until("a freed slot to admit a new connection", || {
        let Ok(mut client) = Client::connect_timeout(server.addr.as_str(), Duration::from_secs(5))
        else {
            return false;
        };
        matches!(client.call(&Request::Metrics), Ok(Response::Metrics(_)))
    });

    // Shutdown must itself get past admission control: the probe
    // connections above close asynchronously, so retry until a slot
    // frees up and the server acknowledges.
    drop(admitted);
    let mut server = server;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut client = Client::connect_timeout(server.addr.as_str(), Duration::from_secs(5))
            .expect("shutdown client connects");
        match client.call(&Request::Shutdown) {
            Ok(Response::ShuttingDown) => break,
            Ok(Response::TooBusy { .. }) | Err(_) => {
                assert!(
                    Instant::now() < deadline,
                    "admission control never freed a slot for shutdown"
                );
                std::thread::sleep(Duration::from_millis(25));
            }
            Ok(other) => panic!("expected shutting_down, got {other:?}"),
        }
    }
    let status = server.child.wait().expect("server exits");
    assert!(status.success(), "server exit status: {status:?}");
}
