//! Integration tests for the `qid` command-line tool, driving the real
//! compiled binary via `CARGO_BIN_EXE_qid`.

use std::io::Write;
use std::process::Command;

/// Writes a small CSV fixture and returns its path.
fn fixture_csv(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("qid-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "id,zip,age,sex").unwrap();
    for i in 0..800 {
        writeln!(
            f,
            "{i},{},{},{}",
            92100 + i % 40,
            18 + (i * 7) % 60,
            if i % 2 == 0 { "M" } else { "F" }
        )
        .unwrap();
    }
    path
}

#[test]
fn duplicate_attrs_deduped_with_warning() {
    let csv = fixture_csv("dup-attrs.csv");
    let (stdout, stderr, ok) = run(&[
        "check",
        csv.to_str().unwrap(),
        "--attrs",
        "zip,zip,age,zip",
        "--eps",
        "0.01",
    ]);
    assert!(ok);
    assert!(
        stderr.contains("duplicate attribute \"zip\""),
        "duplicates must be warned about: {stderr}"
    );
    // The query runs on the deduped, order-preserved set.
    assert!(stdout.contains("[\"zip\", \"age\"]"), "{stdout}");
    assert!(!stdout.contains("zip\", \"zip"), "{stdout}");

    // A name and its index are the same attribute.
    let (stdout, stderr, ok) = run(&[
        "check",
        csv.to_str().unwrap(),
        "--attrs",
        "id,0",
        "--eps",
        "0.01",
    ]);
    assert!(ok);
    assert!(stderr.contains("duplicate attribute \"0\""), "{stderr}");
    assert!(stdout.contains("[\"id\"]"), "{stdout}");
}

#[test]
fn streamed_audit_and_key_report_stream_length() {
    let csv = fixture_csv("streamed.csv");
    let (stdout, _, ok) = run(&["key", csv.to_str().unwrap(), "--eps", "0.01"]);
    assert!(ok);
    assert!(stdout.contains("(streamed)"), "{stdout}");
    assert!(stdout.contains("800 rows x 4 attributes"), "{stdout}");

    let (stdout, _, ok) = run(&["audit", csv.to_str().unwrap(), "--eps", "0.01"]);
    assert!(ok);
    assert!(stdout.contains("(streamed)"), "{stdout}");

    // --exact forces the materialised path.
    let (stdout, _, ok) = run(&["key", csv.to_str().unwrap(), "--eps", "0.01", "--exact"]);
    assert!(ok);
    assert!(!stdout.contains("(streamed)"), "{stdout}");
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_qid"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn stats_lists_cardinalities() {
    let csv = fixture_csv("stats.csv");
    let (stdout, _, ok) = run(&["stats", csv.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("800 rows x 4 attributes"));
    assert!(stdout.contains("zip"));
    assert!(stdout.contains("800 distinct") || stdout.contains("id"));
}

#[test]
fn key_finds_id() {
    let csv = fixture_csv("key.csv");
    let (stdout, _, ok) = run(&["key", csv.to_str().unwrap(), "--eps", "0.01"]);
    assert!(ok);
    assert!(stdout.contains("eps-separation key"));
    assert!(
        stdout.contains("\"id\""),
        "id must be the found key: {stdout}"
    );
}

#[test]
fn check_accepts_key_rejects_weak() {
    let csv = fixture_csv("check.csv");
    let (stdout, _, ok) = run(&[
        "check",
        csv.to_str().unwrap(),
        "--attrs",
        "id",
        "--eps",
        "0.01",
    ]);
    assert!(ok);
    assert!(stdout.contains("Accept"), "{stdout}");

    let (stdout, _, ok) = run(&[
        "check",
        csv.to_str().unwrap(),
        "--attrs",
        "sex",
        "--eps",
        "0.01",
    ]);
    assert!(ok);
    assert!(stdout.contains("Reject"), "{stdout}");
}

#[test]
fn audit_reports_quasi_identifiers() {
    let csv = fixture_csv("audit.csv");
    let (stdout, _, ok) = run(&[
        "audit",
        csv.to_str().unwrap(),
        "--eps",
        "0.01",
        "--max-key-size",
        "2",
    ]);
    assert!(ok);
    assert!(stdout.contains("minimal quasi-identifiers"));
    assert!(stdout.contains("uniquely identified"));
}

#[test]
fn mask_suppresses_id() {
    let csv = fixture_csv("mask.csv");
    let (stdout, _, ok) = run(&[
        "mask",
        csv.to_str().unwrap(),
        "--eps",
        "0.01",
        "--budget",
        "1",
    ]);
    assert!(ok);
    assert!(stdout.contains("suppress"));
    assert!(
        stdout.contains("id"),
        "the id column must be suppressed: {stdout}"
    );
}

/// A CSV wide enough that printing its stats overflows a 64 KiB pipe
/// buffer — so a `| head -1` reader guarantees the writer sees EPIPE.
fn wide_fixture_csv(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("qid-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
    let cols = 3000;
    let header: Vec<String> = (0..cols).map(|c| format!("col_number_{c}")).collect();
    writeln!(f, "{}", header.join(",")).unwrap();
    for row in 0..3 {
        let cells: Vec<String> = (0..cols).map(|c| format!("{}", row * cols + c)).collect();
        writeln!(f, "{}", cells.join(",")).unwrap();
    }
    path
}

/// Runs `cmd | head -1` through the shell, capturing qid's own exit
/// status on stderr (sh has no pipefail, and the pipeline's status is
/// head's).
fn run_piped_to_head(cmd: &str) -> (String, String) {
    let out = Command::new("/bin/sh")
        .args([
            "-c",
            &format!("( {cmd}; echo qid-status=$? >&2 ) | head -1"),
        ])
        .output()
        .expect("shell pipeline runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn closed_pipe_is_a_clean_exit_not_a_panic() {
    // ROADMAP "CLI broken-pipe hygiene": `qid … | head -1` used to
    // panic with "failed printing to stdout: Broken pipe" (println!
    // panics on EPIPE because Rust ignores SIGPIPE). Output now goes
    // through an EPIPE-aware writer that exits 0.
    let csv = wide_fixture_csv("wide-oneshot.csv");
    let cmd = format!(
        "{} stats {}",
        env!("CARGO_BIN_EXE_qid"),
        csv.to_str().unwrap()
    );
    let (stdout, stderr) = run_piped_to_head(&cmd);
    assert!(
        stderr.contains("qid-status=0"),
        "one-shot stats must exit 0 under head -1: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert_eq!(stdout.lines().count(), 1, "{stdout}");
}

#[test]
fn query_output_survives_a_closed_pipe_too() {
    use std::io::BufRead as _;
    // Same hygiene for the served path: spawn a real server, pipe
    // `qid query … stats` (3000 estimate lines ≫ the pipe buffer)
    // into head -1.
    let csv = wide_fixture_csv("wide-query.csv");
    let mut server = Command::new(env!("CARGO_BIN_EXE_qid"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");
    let stdout = server.stdout.take().unwrap();
    let mut announce = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut announce)
        .unwrap();
    let addr = announce
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unparseable announce line: {announce:?}"))
        .to_string();

    let cmd = format!(
        "{} query {} stats {}",
        env!("CARGO_BIN_EXE_qid"),
        addr,
        csv.to_str().unwrap()
    );
    let (stdout, stderr) = run_piped_to_head(&cmd);
    let _ = server.kill();
    let _ = server.wait();
    assert!(
        stderr.contains("qid-status=0"),
        "query stats must exit 0 under head -1: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert_eq!(stdout.lines().count(), 1, "{stdout}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let (_, stderr, ok) = run(&["frobnicate", "/nonexistent.csv"]);
    assert!(!ok);
    assert!(!stderr.is_empty());

    let (_, stderr, ok) = run(&["stats", "/definitely/not/here.csv"]);
    assert!(!ok);
    assert!(stderr.contains("error reading"));

    let csv = fixture_csv("usage.csv");
    let (_, stderr, ok) = run(&["check", csv.to_str().unwrap()]);
    assert!(!ok, "check without --attrs must fail");
    assert!(stderr.contains("--attrs"));
}

#[test]
fn unknown_attribute_rejected() {
    let csv = fixture_csv("unknown.csv");
    let (_, stderr, ok) = run(&["check", csv.to_str().unwrap(), "--attrs", "no_such_column"]);
    assert!(!ok);
    assert!(stderr.contains("unknown attribute"));
}
