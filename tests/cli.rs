//! Integration tests for the `qid` command-line tool, driving the real
//! compiled binary via `CARGO_BIN_EXE_qid`.

use std::io::Write;
use std::process::Command;

/// Writes a small CSV fixture and returns its path.
fn fixture_csv(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("qid-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "id,zip,age,sex").unwrap();
    for i in 0..800 {
        writeln!(
            f,
            "{i},{},{},{}",
            92100 + i % 40,
            18 + (i * 7) % 60,
            if i % 2 == 0 { "M" } else { "F" }
        )
        .unwrap();
    }
    path
}

#[test]
fn duplicate_attrs_deduped_with_warning() {
    let csv = fixture_csv("dup-attrs.csv");
    let (stdout, stderr, ok) = run(&[
        "check",
        csv.to_str().unwrap(),
        "--attrs",
        "zip,zip,age,zip",
        "--eps",
        "0.01",
    ]);
    assert!(ok);
    assert!(
        stderr.contains("duplicate attribute \"zip\""),
        "duplicates must be warned about: {stderr}"
    );
    // The query runs on the deduped, order-preserved set.
    assert!(stdout.contains("[\"zip\", \"age\"]"), "{stdout}");
    assert!(!stdout.contains("zip\", \"zip"), "{stdout}");

    // A name and its index are the same attribute.
    let (stdout, stderr, ok) = run(&[
        "check",
        csv.to_str().unwrap(),
        "--attrs",
        "id,0",
        "--eps",
        "0.01",
    ]);
    assert!(ok);
    assert!(stderr.contains("duplicate attribute \"0\""), "{stderr}");
    assert!(stdout.contains("[\"id\"]"), "{stdout}");
}

#[test]
fn streamed_audit_and_key_report_stream_length() {
    let csv = fixture_csv("streamed.csv");
    let (stdout, _, ok) = run(&["key", csv.to_str().unwrap(), "--eps", "0.01"]);
    assert!(ok);
    assert!(stdout.contains("(streamed)"), "{stdout}");
    assert!(stdout.contains("800 rows x 4 attributes"), "{stdout}");

    let (stdout, _, ok) = run(&["audit", csv.to_str().unwrap(), "--eps", "0.01"]);
    assert!(ok);
    assert!(stdout.contains("(streamed)"), "{stdout}");

    // --exact forces the materialised path.
    let (stdout, _, ok) = run(&["key", csv.to_str().unwrap(), "--eps", "0.01", "--exact"]);
    assert!(ok);
    assert!(!stdout.contains("(streamed)"), "{stdout}");
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_qid"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn stats_lists_cardinalities() {
    let csv = fixture_csv("stats.csv");
    let (stdout, _, ok) = run(&["stats", csv.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("800 rows x 4 attributes"));
    assert!(stdout.contains("zip"));
    assert!(stdout.contains("800 distinct") || stdout.contains("id"));
}

#[test]
fn key_finds_id() {
    let csv = fixture_csv("key.csv");
    let (stdout, _, ok) = run(&["key", csv.to_str().unwrap(), "--eps", "0.01"]);
    assert!(ok);
    assert!(stdout.contains("eps-separation key"));
    assert!(
        stdout.contains("\"id\""),
        "id must be the found key: {stdout}"
    );
}

#[test]
fn check_accepts_key_rejects_weak() {
    let csv = fixture_csv("check.csv");
    let (stdout, _, ok) = run(&[
        "check",
        csv.to_str().unwrap(),
        "--attrs",
        "id",
        "--eps",
        "0.01",
    ]);
    assert!(ok);
    assert!(stdout.contains("Accept"), "{stdout}");

    let (stdout, _, ok) = run(&[
        "check",
        csv.to_str().unwrap(),
        "--attrs",
        "sex",
        "--eps",
        "0.01",
    ]);
    assert!(ok);
    assert!(stdout.contains("Reject"), "{stdout}");
}

#[test]
fn audit_reports_quasi_identifiers() {
    let csv = fixture_csv("audit.csv");
    let (stdout, _, ok) = run(&[
        "audit",
        csv.to_str().unwrap(),
        "--eps",
        "0.01",
        "--max-key-size",
        "2",
    ]);
    assert!(ok);
    assert!(stdout.contains("minimal quasi-identifiers"));
    assert!(stdout.contains("uniquely identified"));
}

#[test]
fn mask_suppresses_id() {
    let csv = fixture_csv("mask.csv");
    let (stdout, _, ok) = run(&[
        "mask",
        csv.to_str().unwrap(),
        "--eps",
        "0.01",
        "--budget",
        "1",
    ]);
    assert!(ok);
    assert!(stdout.contains("suppress"));
    assert!(
        stdout.contains("id"),
        "the id column must be suppressed: {stdout}"
    );
}

#[test]
fn bad_usage_fails_cleanly() {
    let (_, stderr, ok) = run(&["frobnicate", "/nonexistent.csv"]);
    assert!(!ok);
    assert!(!stderr.is_empty());

    let (_, stderr, ok) = run(&["stats", "/definitely/not/here.csv"]);
    assert!(!ok);
    assert!(stderr.contains("error reading"));

    let csv = fixture_csv("usage.csv");
    let (_, stderr, ok) = run(&["check", csv.to_str().unwrap()]);
    assert!(!ok, "check without --attrs must fail");
    assert!(stderr.contains("--attrs"));
}

#[test]
fn unknown_attribute_rejected() {
    let csv = fixture_csv("unknown.csv");
    let (_, stderr, ok) = run(&["check", csv.to_str().unwrap(), "--attrs", "no_such_column"]);
    assert!(!ok);
    assert!(stderr.contains("unknown attribute"));
}
