//! Streaming-path integration: one-pass builders, CSV → stream → sketch
//! pipelines, and materialised-vs-streamed consistency.

use quasi_id::core::filter::SeparationFilter;
use quasi_id::core::stream::{
    pair_filter_from_stream, sketch_from_stream, tuple_filter_from_stream,
};
use quasi_id::dataset::csv::{read_csv_str, CsvOptions};
use quasi_id::dataset::{DatasetTupleSource, VecTupleSource};
use quasi_id::prelude::*;

fn fixture(n: usize) -> Dataset {
    let mut b = DatasetBuilder::new(["id", "const", "mod7"]);
    for i in 0..n as i64 {
        b.push_row([Value::Int(i), Value::Int(0), Value::Int(i % 7)])
            .unwrap();
    }
    b.finish()
}

#[test]
fn one_pass_filters_classify_correctly() {
    let ds = fixture(5_000);
    let params = FilterParams::new(0.01);
    let oracle = ExactOracle::new(&ds);

    let mut src = DatasetTupleSource::new(&ds);
    let tuple = tuple_filter_from_stream(&mut src, params, 3).unwrap();
    let mut src = DatasetTupleSource::new(&ds);
    let pair = pair_filter_from_stream(&mut src, params, 3).unwrap();

    for mask in 1u32..8 {
        let attrs: Vec<AttrId> = (0..3)
            .filter(|&i| mask & (1 << i) != 0)
            .map(AttrId::new)
            .collect();
        assert!(oracle.decision_correct(&attrs, 0.01, tuple.query(&attrs)));
        assert!(oracle.decision_correct(&attrs, 0.01, pair.query(&attrs)));
    }
}

#[test]
fn one_pass_sketch_estimates_within_tolerance() {
    let ds = fixture(3_000);
    let oracle = ExactOracle::new(&ds);
    let mut src = DatasetTupleSource::new(&ds);
    let sketch = sketch_from_stream(&mut src, SketchParams::new(0.05, 0.1, 2), 5).unwrap();
    let attrs = vec![AttrId::new(2)]; // mod7: dense non-separation
    let exact = oracle.unseparated(&attrs) as f64;
    let est = sketch.query(&attrs).estimate().expect("dense");
    assert!((est - exact).abs() / exact < 0.1);
}

#[test]
fn csv_to_stream_to_filter_pipeline() {
    // A CSV file flows through parsing into a one-pass filter build.
    let mut csv = String::from("user,city,active\n");
    for i in 0..900 {
        csv.push_str(&format!("u{i},city{},{}\n", i % 5, i % 2));
    }
    let ds = read_csv_str(&csv, &CsvOptions::default()).unwrap();
    assert_eq!(ds.n_rows(), 900);

    let mut src = DatasetTupleSource::new(&ds);
    let filter = tuple_filter_from_stream(&mut src, FilterParams::new(0.01), 1).unwrap();
    let user = ds.schema().attr_by_name("user").unwrap();
    let city = ds.schema().attr_by_name("city").unwrap();
    let active = ds.schema().attr_by_name("active").unwrap();
    assert_eq!(filter.query(&[user]), FilterDecision::Accept);
    assert_eq!(filter.query(&[city, active]), FilterDecision::Reject);
}

#[test]
fn owned_vec_stream_works() {
    let rows: Vec<Vec<Value>> = (0..500)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::text(if i % 2 == 0 { "a" } else { "b" }),
            ]
        })
        .collect();
    let mut src = VecTupleSource::new(["num", "parity"], rows);
    let filter = tuple_filter_from_stream(&mut src, FilterParams::new(0.05), 2).unwrap();
    assert_eq!(filter.query(&[AttrId::new(0)]), FilterDecision::Accept);
    assert_eq!(filter.query(&[AttrId::new(1)]), FilterDecision::Reject);
}

#[test]
fn streamed_and_materialised_same_seed_same_sample_decisions() {
    let ds = fixture(2_000);
    let params = FilterParams::new(0.02);
    for seed in 0..8 {
        let mut src = DatasetTupleSource::new(&ds);
        let streamed = tuple_filter_from_stream(&mut src, params, seed).unwrap();
        let direct = TupleSampleFilter::build(&ds, params, seed);
        assert_eq!(streamed.sample_size(), direct.sample_size());
        for mask in 1u32..8 {
            let attrs: Vec<AttrId> = (0..3)
                .filter(|&i| mask & (1 << i) != 0)
                .map(AttrId::new)
                .collect();
            assert_eq!(streamed.query(&attrs), direct.query(&attrs), "seed {seed}");
        }
    }
}
