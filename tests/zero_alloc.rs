//! The zero-allocation proof for the steady-state request path.
//!
//! PR 6's claim: serving a plain `check` over a resident,
//! freshness-stamped entry performs **no heap allocation at all** —
//! not amortised-small, zero. This test installs a counting global
//! allocator, drives the exact in-process request path
//! ([`ServerState::answer_line`], the same entry point the poller's
//! workers call with the same per-connection [`Scratch`] arena and
//! output buffer), and asserts the allocation counter does not move
//! across 100 served checks after warm-up — while a real server with
//! TWO armed poller shards (one idle connection each) runs in the
//! same process, so the sharded connection core and write-parking
//! machinery cannot smuggle allocations into the steady state.
//!
//! Scope honesty: the counter watches `answer_line` *plus*
//! [`ServerState::finish_wake`] — parse, registry peek, attribute
//! resolution, filter query, serialisation, metrics, span capture into
//! the preallocated [`Scratch`] arena, and publication into the trace
//! ring. The flight recorder is fully armed for the run: tracing is
//! always on, `--slow-ms` detection is enabled (threshold high enough
//! not to fire), the `--metrics-addr` listener is bound, and the
//! registry's write-ahead journal is armed (`--cache-dir` set), so the
//! durability flusher's ticks and counter-checkpoint rewrites run
//! alongside the counted window. The one
//! remaining per-wake allocation in the live server is the `Box`ed
//! closure that carries a readable connection from the poller thread
//! to the worker pool; that hand-off sits *outside* the request path
//! and is documented in `docs/ARCHITECTURE.md` ("Request path &
//! allocation discipline").
//!
//! One `#[test]` only: a global allocator is process-wide, and a
//! concurrent test's allocations would race the counter.

// The workspace denies `unsafe_code`, and rightly so — but a
// `GlobalAlloc` impl is unavoidably unsafe. This test file is the one
// sanctioned exception; every unsafe block carries its SAFETY
// argument.
#![allow(unsafe_code)]
#![warn(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use quasi_id::server::proto::{Request, Response};
use quasi_id::server::{Client, Scratch, Server, ServerConfig};

/// Heap allocations observed process-wide (allocs and growing
/// reallocs; frees are irrelevant to the claim).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: every method forwards the exact same (ptr, layout,
// new_size) contract to `System`, which is a correct `GlobalAlloc`;
// the only addition is a relaxed counter bump, which cannot violate
// allocator invariants.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded verbatim from our caller, who
        // upholds `GlobalAlloc::alloc`'s contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by `System` (every alloc path
        // above forwards to it) with this exact `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: contract forwarded verbatim; `ptr`/`layout` describe
        // a live `System` allocation and `new_size` is our caller's
        // responsibility per `GlobalAlloc::realloc`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_served_check_allocates_nothing() {
    // A small but real dataset: enough columns for a multi-attribute
    // check, enough rows that the sample is non-trivial.
    let dir = std::env::temp_dir().join("qid-zero-alloc");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("people.csv");
    let mut csv = String::from("zip,age,sex,job\n");
    for i in 0..500 {
        csv.push_str(&format!(
            "{:05},{},{},job{}\n",
            i % 89,
            18 + i % 60,
            i % 2,
            i % 7
        ));
    }
    std::fs::write(&path, csv).expect("write csv");
    let path = path.to_str().expect("utf-8 path");

    // The server RUNS for this proof: two poller shards armed with one
    // idle connection each, the accept loop live, the metrics listener
    // serving, workers parked on the queue. The claim must survive the
    // sharded connection core, not just a bound-but-quiet process —
    // and an idle shard iteration (channel poll, gauge store,
    // `epoll_wait` into a reused buffer) is itself allocation-free, so
    // live pollers cannot excuse a moving counter. A huge revalidation
    // window keeps the freshness stamp valid for the whole test; the
    // observability subsystem is fully enabled — the zero-alloc
    // contract must hold *under instrumentation*: slow-request
    // detection is armed with a threshold no test request can cross,
    // and every request records a trace span.
    // The background revalidation sweeper is ARMED for the run: its
    // thread naps in 50 ms slices alongside the counted window, and an
    // idle nap iteration (deadline compare, shutdown-flag load, sleep)
    // must be allocation-free too. The interval is an hour so no
    // actual sweep pass — which walks shards and re-stamps sources,
    // allocating on its own thread by design — lands inside the
    // counted window of this process-wide counter.
    // The registry journal (WAL) is ARMED too: `cache_dir` is set, so
    // the durability flusher thread ticks every 100 ms alongside the
    // counted window and — because served checks move the hit counter —
    // rewrites the counter checkpoint file during it. Both the idle
    // tick and the checkpoint rewrite (a reused buffer, manual integer
    // rendering, persistent fds) must be allocation-free; the `check`
    // path itself emits no journal events, so `record()` never runs in
    // the window.
    let cache_dir = dir.join("cache");
    let _ = std::fs::remove_dir_all(&cache_dir); // stale journal from a prior run
    let server = Server::bind(&ServerConfig {
        workers: 1,
        pollers: 2,
        revalidate_ms: 3_600_000,
        sweep_ms: 3_600_000,
        metrics_addr: Some("127.0.0.1:0".to_string()),
        slow_ms: Some(60_000),
        log_json: false,
        cache_dir: Some(cache_dir.to_str().expect("utf-8 cache dir").to_string()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let state = server.state();
    let running = server.spawn();

    // Arm both shards: round-robin admission puts one idle connection
    // on each, and the wire client (a third connection) confirms via
    // the per-shard gauges that every shard holds at least one before
    // the counter starts watching.
    let _idles: Vec<std::net::TcpStream> = (0..2)
        .map(|_| std::net::TcpStream::connect(running.addr()).expect("idle conn"))
        .collect();
    let mut client = Client::connect(running.addr()).expect("wire client");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match client.call(&Request::Metrics).expect("metrics answered") {
            Response::Metrics(report)
                if report.poller_connections.len() == 2
                    && report.poller_connections.iter().all(|&n| n >= 1) =>
            {
                break;
            }
            Response::Metrics(_) => {}
            other => panic!("expected metrics, got {other:?}"),
        }
        assert!(
            Instant::now() < deadline,
            "both poller shards must arm a connection"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let mut scratch = Scratch::new();
    let mut out = Vec::new();

    // Load the dataset through the same front door a client uses.
    let load = format!(r#"{{"cmd":"load","path":"{path}","eps":0.01,"seed":7}}"#);
    state.answer_line(load.as_bytes(), &mut scratch, &mut out);
    assert!(
        out.starts_with(br#"{"ok":true,"kind":"loaded""#),
        "load failed: {}",
        String::from_utf8_lossy(&out)
    );

    let check =
        format!(r#"{{"cmd":"check","path":"{path}","eps":0.01,"seed":7,"attrs":["zip","age"]}}"#);

    // Warm-up, excluded from the count: the first served check pays
    // its one-time costs (cache-key canonicalisation into the memo,
    // scratch/output buffer growth); a few more iterations prove the
    // path has settled before the counter arms.
    out.clear();
    state.answer_line(check.as_bytes(), &mut scratch, &mut out);
    let expected = out.clone();
    assert!(
        expected.starts_with(br#"{"ok":true,"kind":"check""#),
        "warm-up check did not take the served path: {}",
        String::from_utf8_lossy(&expected)
    );
    for _ in 0..10 {
        out.clear();
        state.answer_line(check.as_bytes(), &mut scratch, &mut out);
        state.finish_wake(&mut scratch, std::time::Duration::ZERO);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..100 {
        out.clear();
        let shutdown = state.answer_line(check.as_bytes(), &mut scratch, &mut out);
        // The wake epilogue — span publication into the trace ring and
        // slow-request detection — is part of the per-request path, so
        // it runs inside the counted window.
        state.finish_wake(&mut scratch, std::time::Duration::ZERO);
        assert!(!shutdown);
        assert!(out == expected, "fast-path answer drifted");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state served check allocated {} time(s) in 100 requests",
        after - before
    );

    // Tear down the live server cleanly — a wedged drain would mean
    // the counted window ran against a broken process.
    drop(_idles);
    assert_eq!(
        client.call(&Request::Shutdown).expect("shutdown answered"),
        Response::ShuttingDown
    );
    drop(client);
    running.join().expect("clean drain");
}
