//! Smoke test: every file in `examples/` builds and runs to a zero
//! exit status, so example bit-rot shows up in `cargo test` instead of
//! only when a reader copies one.

use std::path::PathBuf;
use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "privacy_audit",
    "data_cleaning",
    "sketch_estimation",
    "streaming_filter",
];

/// `target/<profile>/examples/<name>`, resolved from this test binary's
/// own location (`target/<profile>/deps/...`). `cargo test` builds the
/// example targets alongside the tests; if one is missing (e.g. a
/// filtered build), fall back to `cargo build --examples`.
fn example_binary(name: &str) -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary has a path");
    dir.pop(); // strip the test binary file name -> deps/
    if dir.ends_with("deps") {
        dir.pop(); // -> target/<profile>/
    }
    let bin = dir
        .join("examples")
        .join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    if !bin.exists() {
        let mut cmd = Command::new(env!("CARGO"));
        cmd.args(["build", "--examples"]);
        if dir.ends_with("release") {
            cmd.arg("--release");
        }
        let status = cmd.status().expect("cargo is runnable");
        assert!(status.success(), "cargo build --examples failed");
    }
    assert!(
        bin.exists(),
        "example binary not found at {}",
        bin.display()
    );
    bin
}

#[test]
fn all_examples_run_cleanly() {
    for name in EXAMPLES {
        let out = Command::new(example_binary(name))
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn example `{name}`: {e}"));
        assert!(
            out.status.success(),
            "example `{name}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        assert!(
            !out.stdout.is_empty(),
            "example `{name}` printed nothing on stdout"
        );
    }
}

/// The example list above must stay in sync with the files on disk.
#[test]
fn example_list_matches_directory() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut on_disk: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/ exists")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    listed.sort();
    assert_eq!(
        listed, on_disk,
        "EXAMPLES constant is out of sync with examples/"
    );
}
