//! Cross-crate integration: generators → filters/sketches/min-keys →
//! exact oracle, exercising the public façade exactly as a user would.

use quasi_id::core::filter::SeparationFilter;
use quasi_id::core::minkey::{exact_min_key_sampled, GreedyRefineMinKey, MxGreedyMinKey};
use quasi_id::core::oracle::OracleClass;
use quasi_id::dataset::generator::{ColumnSpec, DatasetSpec};
use quasi_id::prelude::*;

/// A mid-size data set with known structure: a real key, a near-key,
/// and clearly bad attributes.
fn structured_dataset(n: usize, seed: u64) -> Dataset {
    DatasetSpec::new(n)
        .column("id", ColumnSpec::RowId)
        .column(
            "noise3",
            ColumnSpec::Zipf {
                cardinality: 3,
                exponent: 0.5,
            },
        )
        .column(
            "noise50",
            ColumnSpec::Zipf {
                cardinality: 50,
                exponent: 1.0,
            },
        )
        .column(
            "wide",
            ColumnSpec::Uniform {
                cardinality: 100_000,
            },
        )
        .column("flag", ColumnSpec::Binary { p_one: 0.2 })
        .generate(seed)
        .expect("valid spec")
}

#[test]
fn filters_are_correct_on_every_classified_subset() {
    let ds = structured_dataset(20_000, 1);
    let eps = 0.01;
    let params = FilterParams::new(eps);
    let oracle = ExactOracle::new(&ds);

    let tuple = TupleSampleFilter::build(&ds, params, 3);
    let pair = PairSampleFilter::build(&ds, params, 3);

    // All 31 non-empty subsets of the 5 attributes.
    for mask in 1u32..32 {
        let attrs: Vec<AttrId> = (0..5)
            .filter(|&i| mask & (1 << i) != 0)
            .map(AttrId::new)
            .collect();
        for (name, decision) in [("tuple", tuple.query(&attrs)), ("pair", pair.query(&attrs))] {
            assert!(
                oracle.decision_correct(&attrs, eps, decision),
                "{name} filter answered {decision:?} on {attrs:?} (class {:?})",
                oracle.classify(&attrs, eps)
            );
        }
    }
}

#[test]
fn filters_agree_with_each_other_mostly() {
    // The paper's Table 1 agreement metric: on random subsets the two
    // filters agree on the overwhelming majority.
    let ds = structured_dataset(30_000, 2);
    let params = FilterParams::new(0.001);
    let tuple = TupleSampleFilter::build(&ds, params, 5);
    let pair = PairSampleFilter::build(&ds, params, 5);
    let mut agree = 0;
    let mut total = 0;
    for mask in 1u32..32 {
        let attrs: Vec<AttrId> = (0..5)
            .filter(|&i| mask & (1 << i) != 0)
            .map(AttrId::new)
            .collect();
        total += 1;
        if tuple.query(&attrs) == pair.query(&attrs) {
            agree += 1;
        }
    }
    assert!(
        agree * 10 >= total * 9,
        "agreement {agree}/{total} below 90%"
    );
}

#[test]
fn minkey_pipeline_returns_valid_eps_keys() {
    let ds = structured_dataset(20_000, 3);
    let eps = 0.01;
    let params = FilterParams::new(eps);
    let oracle = ExactOracle::new(&ds);

    let refine = GreedyRefineMinKey::new(params).run(&ds, 7);
    assert!(refine.complete);
    assert!(
        !oracle.is_bad(&refine.attrs, eps),
        "greedy-refine key {:?} is bad",
        refine.attrs
    );

    let mx = MxGreedyMinKey::new(params).run(&ds, 7);
    assert!(mx.complete);
    assert!(
        !oracle.is_bad(&mx.attrs, eps),
        "MX key {:?} is bad",
        mx.attrs
    );

    let exact = exact_min_key_sampled(&ds, params, 7).expect("id column is a key");
    assert!(!oracle.is_bad(&exact, eps));
    // The exact sampled key can't be bigger than either greedy's.
    assert!(exact.len() <= refine.key_size());
    assert!(exact.len() <= mx.key_size());
    // "id" alone is a key, so all should find a 1-attribute key here.
    assert_eq!(exact.len(), 1);
}

#[test]
fn benchmark_generators_have_sane_structure() {
    let ds = adult_like(5);
    let oracle = ExactOracle::new(&ds);
    // fnlwgt (high cardinality) separates most pairs; sex separates few.
    let fnlwgt = ds.schema().attr_by_name("fnlwgt").unwrap();
    let sex = ds.schema().attr_by_name("sex").unwrap();
    assert!(oracle.separation_ratio(&[fnlwgt]) > 0.95);
    assert!(oracle.separation_ratio(&[sex]) < 0.6);
    // The full attribute set is a key or nearly one.
    let all = ds.all_attrs();
    assert!(oracle.separation_ratio(&all) > 0.999);
}

#[test]
fn oracle_classification_consistency_with_profile() {
    let ds = structured_dataset(5_000, 9);
    let oracle = ExactOracle::new(&ds);
    for mask in 1u32..32 {
        let attrs: Vec<AttrId> = (0..5)
            .filter(|&i| mask & (1 << i) != 0)
            .map(AttrId::new)
            .collect();
        let profile = quasi_id::core::CliqueProfile::from_dataset(&ds, &attrs);
        assert_eq!(profile.unseparated_pairs(), oracle.unseparated(&attrs));
        assert_eq!(profile.is_key(), oracle.is_key(&attrs));
        match oracle.classify(&attrs, 0.05) {
            OracleClass::Key => assert!(profile.is_key()),
            OracleClass::Bad => assert!(profile.is_bad(0.05)),
            OracleClass::Intermediate => {
                assert!(!profile.is_key() && !profile.is_bad(0.05));
            }
        }
    }
}

#[test]
fn sketch_vs_oracle_on_structured_data() {
    let ds = structured_dataset(20_000, 11);
    let oracle = ExactOracle::new(&ds);
    // Theorem 2 needs a "sufficiently large constant K"; multiplier 4
    // keeps the (1±ε) promise comfortably at this scale.
    let params = SketchParams::with_multiplier(0.02, 0.1, 3, 4.0);
    let sketch = NonSeparationSketch::build(&ds, params, 13);
    let total = ds.n_pairs() as f64;

    for mask in 1u32..32 {
        let attrs: Vec<AttrId> = (0..5)
            .filter(|&i| mask & (1 << i) != 0)
            .map(AttrId::new)
            .collect();
        if attrs.len() > 3 {
            continue; // guarantee only covers |A| ≤ k
        }
        let exact = oracle.unseparated(&attrs) as f64;
        if exact < 0.02 * total {
            continue; // below α: Small is allowed
        }
        let est = sketch
            .query(&attrs)
            .estimate()
            .unwrap_or_else(|| panic!("dense subset {attrs:?} answered Small"));
        let rel = (est - exact).abs() / exact;
        assert!(rel < 0.1, "subset {attrs:?}: rel error {rel}");
    }
}
