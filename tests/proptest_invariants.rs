//! Property-based invariants across the whole stack (proptest).

use proptest::prelude::*;

use quasi_id::core::minkey::GreedyRefineMinKey;
use quasi_id::core::separation::{group_sizes, unseparated_pairs, PartitionIndex, Refiner};
use quasi_id::prelude::*;
use quasi_id::sampling::{pair_count, rank_pair, unrank_pair};

/// Strategy: a small random data set as a code matrix (rows × attrs)
/// with bounded cardinality per attribute.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (1usize..40, 1usize..5).prop_flat_map(|(rows, attrs)| {
        proptest::collection::vec(proptest::collection::vec(0i64..6, attrs), rows).prop_map(
            move |matrix| {
                let names: Vec<String> = (0..attrs).map(|a| format!("a{a}")).collect();
                let mut b = DatasetBuilder::new(names);
                for row in matrix {
                    b.push_row(row.into_iter().map(Value::Int)).unwrap();
                }
                b.finish()
            },
        )
    })
}

/// All subsets of the attribute set (data sets are ≤ 4 attrs wide).
fn all_subsets(m: usize) -> Vec<Vec<AttrId>> {
    (0u32..(1 << m))
        .map(|mask| {
            (0..m)
                .filter(|&i| mask & (1 << i) != 0)
                .map(AttrId::new)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Γ is monotone non-increasing under attribute-set inclusion.
    #[test]
    fn gamma_monotone_in_attrs(ds in dataset_strategy()) {
        let m = ds.n_attrs();
        for attrs in all_subsets(m) {
            let gamma = unseparated_pairs(&ds, &attrs);
            for extra in 0..m {
                let a = AttrId::new(extra);
                if attrs.contains(&a) { continue; }
                let mut bigger = attrs.clone();
                bigger.push(a);
                prop_assert!(
                    unseparated_pairs(&ds, &bigger) <= gamma,
                    "adding {a} increased Γ"
                );
            }
        }
    }

    /// Group sizes always partition the rows; Γ consistent with sizes.
    #[test]
    fn group_sizes_partition_rows(ds in dataset_strategy()) {
        for attrs in all_subsets(ds.n_attrs()) {
            let sizes = group_sizes(&ds, &attrs);
            let total: usize = sizes.iter().sum();
            prop_assert_eq!(total, ds.n_rows());
            let gamma: u128 = sizes.iter().map(|&c| (c as u128) * (c as u128 - 1) / 2).sum();
            prop_assert_eq!(gamma, unseparated_pairs(&ds, &attrs));
        }
    }

    /// The filters accept every key and reject every subset that fails
    /// on the sample — and both behaviours are sound w.r.t. the oracle.
    #[test]
    fn filter_decisions_sound(ds in dataset_strategy(), seed in 0u64..50) {
        prop_assume!(ds.n_rows() >= 2);
        let eps = 0.05;
        let params = FilterParams::new(eps);
        let oracle = ExactOracle::new(&ds);
        let tuple = TupleSampleFilter::build(&ds, params, seed);
        let pair = PairSampleFilter::build(&ds, params, seed);
        for attrs in all_subsets(ds.n_attrs()) {
            if attrs.is_empty() { continue; }
            if oracle.is_key(&attrs) {
                prop_assert_eq!(tuple.query(&attrs), FilterDecision::Accept);
                prop_assert_eq!(pair.query(&attrs), FilterDecision::Accept);
            }
            // A rejection always has a witness pair in the data.
            if tuple.query(&attrs) == FilterDecision::Reject {
                prop_assert!(oracle.unseparated(&attrs) > 0);
            }
            if pair.query(&attrs) == FilterDecision::Reject {
                prop_assert!(oracle.unseparated(&attrs) > 0);
            }
        }
    }

    /// Greedy-refine on the full (small) data set always returns a set
    /// separating everything separable, and never picks useless attrs.
    #[test]
    fn greedy_refine_complete_and_minimalish(ds in dataset_strategy()) {
        let r = GreedyRefineMinKey::run_on_sample(&ds);
        let full: Vec<AttrId> = ds.all_attrs();
        let best_possible = unseparated_pairs(&ds, &full);
        if r.complete {
            prop_assert_eq!(unseparated_pairs(&ds, &r.attrs), 0);
        } else {
            // Incomplete ⇒ even all attributes cannot separate.
            prop_assert!(best_possible > 0);
            prop_assert_eq!(unseparated_pairs(&ds, &r.attrs), best_possible);
        }
        // Every chosen attribute strictly reduced Γ (gain > 0): dropping
        // the last pick must increase Γ.
        if let Some((_last, rest)) = r.attrs.split_last() {
            prop_assert!(
                unseparated_pairs(&ds, rest) > unseparated_pairs(&ds, &r.attrs)
            );
        }
    }

    /// The partition index agrees with raw code comparisons, and the
    /// refiner's split sizes match group_sizes on single attributes.
    #[test]
    fn partition_index_consistent(ds in dataset_strategy()) {
        prop_assume!(ds.n_rows() >= 1);
        let idx = PartitionIndex::build(&ds);
        let mut refiner = Refiner::new(&idx);
        let all_rows: Vec<u32> = (0..ds.n_rows() as u32).collect();
        for a in 0..ds.n_attrs() {
            let attr = AttrId::new(a);
            let mut split: Vec<u32> = refiner.split_sizes(&idx, attr, &all_rows).to_vec();
            split.sort_unstable();
            let mut expected: Vec<u32> =
                group_sizes(&ds, &[attr]).into_iter().map(|s| s as u32).collect();
            expected.sort_unstable();
            prop_assert_eq!(split, expected);
        }
    }

    /// Pair (un)ranking is a bijection.
    #[test]
    fn pair_rank_bijection(n in 2usize..2000, salt in 0u128..1000) {
        let universe = pair_count(n);
        let rank = salt % universe;
        let (i, j) = unrank_pair(rank);
        prop_assert!(i < j && j < n || j >= n && rank >= pair_count(n));
        // j < n whenever rank < C(n,2):
        prop_assert!(j < n);
        prop_assert_eq!(rank_pair(i, j), rank);
    }

    /// Sketch estimates are exact when the sample covers the universe.
    #[test]
    fn sketch_exact_mode_is_exact(ds in dataset_strategy(), seed in 0u64..20) {
        prop_assume!(ds.n_rows() >= 2 && ds.n_rows() <= 30);
        let params = SketchParams::with_multiplier(0.5, 0.5, 2, 10_000.0);
        let sk = NonSeparationSketch::build(&ds, params, seed);
        let oracle = ExactOracle::new(&ds);
        for attrs in all_subsets(ds.n_attrs()) {
            if attrs.is_empty() || attrs.len() > 2 { continue; }
            let exact = oracle.unseparated(&attrs) as f64;
            match sk.query(&attrs) {
                SketchAnswer::Estimate(est) =>
                    prop_assert!((est - exact).abs() < 1e-6),
                SketchAnswer::Small =>
                    prop_assert!(exact < 0.5 * ds.n_pairs() as f64),
            }
        }
    }
}
