//! Crash-recovery suite for the registry journal: SIGKILL the real
//! `qid serve` binary mid-flight, restart it on the same `--cache-dir`,
//! and prove the durability tier's promises from the outside —
//!
//! * the restart is **warm**: keys the journal replays serve as plain
//!   hits, with zero new build misses;
//! * the cumulative counters are **monotone across the kill**: the
//!   journaled lifecycle counters (misses, disk hits, …) never move
//!   backwards, and `restarts` counts the prior life;
//! * the cache dir is **consistent**: `qid wal --verify` exits zero,
//!   no `*.tmp` build orphans survive the crash-evidence sweep, and
//!   the interrupted operation's dataset still answers correctly when
//!   asked again.
//!
//! The kill is racy by design — it may land mid-build, mid-absorb, or
//! just after either completes. Every assertion below holds on all
//! sides of the race; what varies is only *which* keys the journal can
//! replay warm.

use std::io::{BufRead as _, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use quasi_id::server::proto::{DatasetRef, LoadMode, Request, Response};
use quasi_id::server::{Client, MetricsReport};

/// A `qid serve --cache-dir …` child bound to an ephemeral port.
struct ServerUnderTest {
    child: Child,
    addr: String,
}

impl ServerUnderTest {
    fn spawn(cache_dir: &Path) -> ServerUnderTest {
        let mut child = Command::new(env!("CARGO_BIN_EXE_qid"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--cache-dir",
                cache_dir.to_str().expect("utf-8 cache dir"),
            ])
            .stdout(Stdio::piped())
            .spawn()
            .expect("server spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut first_line = String::new();
        BufReader::new(stdout)
            .read_line(&mut first_line)
            .expect("server announces its address");
        let addr = first_line
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unparseable announce line: {first_line:?}"))
            .to_string();
        ServerUnderTest { child, addr }
    }

    fn client(&self) -> Client {
        Client::connect_timeout(self.addr.as_str(), Duration::from_secs(30))
            .expect("client connects")
    }

    /// SIGKILL — no drain, no shutdown record, no final checkpoint.
    fn kill9(mut self) {
        self.child.kill().expect("kill -9 delivered");
        self.child.wait().expect("killed child reaped");
    }

    /// Clean protocol shutdown, waiting for a zero exit.
    fn shutdown(mut self) {
        let mut client = self.client();
        assert_eq!(
            client.call(&Request::Shutdown).expect("shutdown answered"),
            Response::ShuttingDown
        );
        let status = self.child.wait().expect("server exits");
        assert!(status.success(), "server exit status: {status:?}");
    }
}

impl Drop for ServerUnderTest {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn unique_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "qid-crash-recovery-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn write_fixture(path: &Path, rows: usize) {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("fixture"));
    writeln!(f, "id,parity").unwrap();
    for i in 0..rows {
        writeln!(f, "{i},{}", i % 2).unwrap();
    }
}

fn append_rows(path: &Path, start: usize, rows: usize) {
    let f = std::fs::File::options().append(true).open(path).unwrap();
    let mut f = std::io::BufWriter::new(f);
    for i in start..start + rows {
        writeln!(f, "{i},{}", i % 2).unwrap();
    }
}

fn dsref(path: &Path) -> DatasetRef {
    DatasetRef {
        path: path.to_str().unwrap().into(),
        eps: 0.01,
        seed: 7,
    }
}

fn metrics(client: &mut Client) -> MetricsReport {
    match client.call(&Request::Metrics).expect("metrics answered") {
        Response::Metrics(report) => report,
        other => panic!("expected metrics, got {other:?}"),
    }
}

/// `qid wal <dir> --verify` must exit zero: the journal is internally
/// consistent (a crash-torn tail is tolerated wear, not corruption).
fn assert_wal_verifies(cache_dir: &Path) {
    let output = Command::new(env!("CARGO_BIN_EXE_qid"))
        .args(["wal", cache_dir.to_str().unwrap(), "--verify"])
        .output()
        .expect("qid wal runs");
    assert!(
        output.status.success(),
        "qid wal --verify failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}

/// After a restart over crash evidence, no `*.tmp` build orphans may
/// survive (the sweep skips the age gate), and each artifact stem must
/// appear at most once per suffix — duplicates would mean a torn
/// publish escaped the rename-only discipline.
fn assert_artifacts_consistent(cache_dir: &Path) {
    let mut seen = std::collections::HashSet::new();
    for entry in std::fs::read_dir(cache_dir).expect("cache dir listable") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy().into_owned();
        assert!(
            !name.ends_with(".tmp"),
            "tmp orphan survived the crash-evidence sweep: {name}"
        );
        assert!(seen.insert(name.clone()), "duplicate artifact: {name}");
    }
}

/// Monotone across a kill: every journaled lifecycle counter in
/// `after` is at least its pre-kill value. (`hits` is checkpointed on
/// a 100 ms cadence rather than journaled per event, so a kill may
/// legitimately lose the final window; it is asserted separately
/// where the test controls the timing.)
fn assert_counters_monotone(before: &MetricsReport, after: &MetricsReport) {
    for (name, b, a) in [
        ("misses", before.cache_misses, after.cache_misses),
        ("disk_hits", before.cache_disk_hits, after.cache_disk_hits),
        ("evictions", before.cache_evictions, after.cache_evictions),
        (
            "stale_rebuilds",
            before.cache_stale_rebuilds,
            after.cache_stale_rebuilds,
        ),
        (
            "append_updates",
            before.cache_append_updates,
            after.cache_append_updates,
        ),
    ] {
        assert!(
            a >= b,
            "counter {name} moved backwards across the kill: {b} -> {a}"
        );
    }
}

#[test]
fn kill9_mid_build_restarts_warm_with_monotone_counters() {
    let dir = unique_dir("mid-build");
    let cache = dir.join("cache");
    let small = dir.join("small.csv");
    let big = dir.join("big.csv");
    write_fixture(&small, 500);
    // Big enough that its build plausibly straddles the kill; the
    // assertions hold whichever way the race lands.
    write_fixture(&big, 120_000);

    let server = ServerUnderTest::spawn(&cache);
    let mut client = server.client();
    match client
        .call(&Request::Load {
            ds: dsref(&small),
            mode: LoadMode::Stream,
        })
        .expect("load answered")
    {
        Response::Loaded { rows, cached, .. } => {
            assert_eq!(rows, 500);
            assert!(!cached);
        }
        other => panic!("expected loaded, got {other:?}"),
    }
    let before = metrics(&mut client);
    assert!(before.cache_misses >= 1);
    assert_eq!(before.restarts, 0, "first life of this cache dir");

    // Fire the big build on its own connection and kill the server
    // while it is (probably) still scanning.
    let addr = server.addr.clone();
    let big_path = big.clone();
    let builder = std::thread::spawn(move || {
        let mut c = Client::connect_timeout(addr.as_str(), Duration::from_secs(30))
            .expect("builder connects");
        // The reply may be a real answer (build won the race) or a
        // transport error (the kill severed the connection) — both fine.
        let _ = c.call(&Request::Load {
            ds: dsref(&big_path),
            mode: LoadMode::Stream,
        });
    });
    std::thread::sleep(Duration::from_millis(30));
    drop(client);
    server.kill9();
    builder.join().expect("builder thread exits");

    // The journal must verify even with a crash-torn tail…
    assert_wal_verifies(&cache);

    // …and the restarted server resumes warm.
    let server = ServerUnderTest::spawn(&cache);
    assert_artifacts_consistent(&cache);
    let mut client = server.client();
    let after = metrics(&mut client);
    assert_eq!(after.restarts, 1, "the crash counts as a prior life");
    assert!(after.wal_replayed_events > 0, "the journal was replayed");
    assert_counters_monotone(&before, &after);

    // The small key was journaled before the kill: it serves as a
    // plain hit — zero new build misses for a replayed key.
    match client
        .call(&Request::Load {
            ds: dsref(&small),
            mode: LoadMode::Stream,
        })
        .expect("warm load answered")
    {
        Response::Loaded { rows, cached, .. } => {
            assert_eq!(rows, 500);
            assert!(cached, "a replayed key is already resident");
        }
        other => panic!("expected loaded, got {other:?}"),
    }
    let warm = metrics(&mut client);
    assert_eq!(
        warm.cache_misses, after.cache_misses,
        "a replayed key must not pay a build miss"
    );

    // The interrupted dataset still answers correctly when asked again
    // (rebuilt or replayed, depending on where the kill landed).
    match client
        .call(&Request::Load {
            ds: dsref(&big),
            mode: LoadMode::Stream,
        })
        .expect("big load answered")
    {
        Response::Loaded { rows, .. } => assert_eq!(rows, 120_000),
        other => panic!("expected loaded, got {other:?}"),
    }

    drop(client);
    server.shutdown();
    // A clean shutdown leaves a verifying journal with a shutdown
    // record; counters stay monotone into the next life too.
    assert_wal_verifies(&cache);
}

#[test]
fn kill9_mid_append_absorb_recovers_a_consistent_answer() {
    let dir = unique_dir("mid-absorb");
    let cache = dir.join("cache");
    let csv = dir.join("grow.csv");
    write_fixture(&csv, 300);

    let server = ServerUnderTest::spawn(&cache);
    let mut client = server.client();
    match client
        .call(&Request::Load {
            ds: dsref(&csv),
            mode: LoadMode::Stream,
        })
        .expect("load answered")
    {
        Response::Loaded { rows, .. } => assert_eq!(rows, 300),
        other => panic!("expected loaded, got {other:?}"),
    }
    let before = metrics(&mut client);

    // Grow the source, then kill the server while a lookup is
    // (probably) absorbing the suffix.
    append_rows(&csv, 300, 50_000);
    let addr = server.addr.clone();
    let csv_path = csv.clone();
    let absorber = std::thread::spawn(move || {
        let mut c = Client::connect_timeout(addr.as_str(), Duration::from_secs(30))
            .expect("absorber connects");
        let _ = c.call(&Request::Check {
            ds: dsref(&csv_path),
            attrs: vec!["id".into()],
        });
    });
    std::thread::sleep(Duration::from_millis(20));
    drop(client);
    server.kill9();
    absorber.join().expect("absorber thread exits");

    assert_wal_verifies(&cache);

    let server = ServerUnderTest::spawn(&cache);
    assert_artifacts_consistent(&cache);
    let mut client = server.client();
    let after = metrics(&mut client);
    assert_eq!(after.restarts, 1);
    assert_counters_monotone(&before, &after);

    // Whatever state the kill froze — pre-append, mid-absorb tmp (now
    // swept), or fully absorbed — the next answer reflects the real
    // file, with no duplicate or corrupt artifacts behind it.
    match client
        .call(&Request::Load {
            ds: dsref(&csv),
            mode: LoadMode::Stream,
        })
        .expect("post-restart load answered")
    {
        Response::Loaded { rows, .. } => assert_eq!(rows, 50_300),
        other => panic!("expected loaded, got {other:?}"),
    }

    drop(client);
    server.shutdown();
    assert_wal_verifies(&cache);
}
