//! Integration tests for `qid serve`: spawn the real binary on an
//! ephemeral port and drive it through the wire protocol with the
//! library client and the `qid query` CLI.

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use quasi_id::server::proto::{DatasetRef, LoadMode, Request, Response};
use quasi_id::server::Client;

/// Writes a CSV fixture with `rows` rows at `path`.
fn write_fixture(path: &std::path::Path, rows: usize) {
    let mut f = std::fs::File::create(path).unwrap();
    writeln!(f, "id,zip,age,sex").unwrap();
    for i in 0..rows {
        writeln!(
            f,
            "{i},{},{},{}",
            92100 + i % 40,
            18 + (i * 7) % 60,
            if i % 2 == 0 { "M" } else { "F" }
        )
        .unwrap();
    }
}

/// Writes a small CSV fixture and returns its path.
fn fixture_csv(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("qid-server-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    write_fixture(&path, 800);
    path
}

/// A unique, empty scratch directory for cache-dir tests.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qid-server-tests-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A `qid serve` child process bound to an ephemeral port.
struct ServerUnderTest {
    child: Child,
    addr: String,
    /// The full announce line (carries the poller backend and the
    /// hardening knobs).
    announce: String,
}

impl ServerUnderTest {
    /// Spawns the server and parses the bound address off its stdout.
    fn spawn(workers: usize) -> ServerUnderTest {
        Self::spawn_with(workers, &[])
    }

    /// Like [`ServerUnderTest::spawn`] with extra `qid serve` flags
    /// (e.g. `--cache-dir`, `--cache-bytes`).
    fn spawn_with(workers: usize, extra: &[&str]) -> ServerUnderTest {
        Self::spawn_full(workers, extra, &[], false)
    }

    /// Full-control spawn: extra flags, extra environment variables,
    /// and optionally captured stderr (for asserting "no worker
    /// panicked" after a drain).
    fn spawn_full(
        workers: usize,
        extra: &[&str],
        env: &[(&str, &str)],
        capture_stderr: bool,
    ) -> ServerUnderTest {
        let mut command = Command::new(env!("CARGO_BIN_EXE_qid"));
        command
            .args(["serve", "--addr", "127.0.0.1:0", "--workers"])
            .arg(workers.to_string())
            .args(extra)
            .stdout(Stdio::piped());
        for (key, value) in env {
            command.env(key, value);
        }
        if capture_stderr {
            command.stderr(Stdio::piped());
        }
        let mut child = command.spawn().expect("server spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut first_line = String::new();
        BufReader::new(stdout)
            .read_line(&mut first_line)
            .expect("server announces its address");
        let addr = first_line
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unparseable announce line: {first_line:?}"))
            .to_string();
        ServerUnderTest {
            child,
            addr,
            announce: first_line,
        }
    }

    fn client(&self) -> Client {
        Client::connect_timeout(self.addr.as_str(), Duration::from_secs(30))
            .expect("client connects")
    }

    /// Requests shutdown and waits for a clean exit.
    fn shutdown(mut self) {
        let mut client = self.client();
        assert_eq!(
            client.call(&Request::Shutdown).expect("shutdown answered"),
            Response::ShuttingDown
        );
        let status = self.child.wait().expect("server exits");
        assert!(status.success(), "server exit status: {status:?}");
    }

    fn ds(&self, path: &std::path::Path, eps: f64, seed: u64) -> DatasetRef {
        DatasetRef {
            path: path.to_str().unwrap().to_string(),
            eps,
            seed,
        }
    }
}

impl Drop for ServerUnderTest {
    fn drop(&mut self) {
        // Best-effort: do not leak daemons when an assertion fails.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn metrics(client: &mut Client) -> quasi_id::server::MetricsReport {
    match client.call(&Request::Metrics).expect("metrics answered") {
        Response::Metrics(report) => report,
        other => panic!("expected metrics, got {other:?}"),
    }
}

#[test]
fn full_session_load_audit_check_metrics_shutdown() {
    let csv = fixture_csv("session.csv");
    let server = ServerUnderTest::spawn(2);
    let mut client = server.client();
    let ds = server.ds(&csv, 0.01, 7);

    // load: a cold build.
    match client
        .call(&Request::Load {
            ds: ds.clone(),
            mode: LoadMode::Memory,
        })
        .unwrap()
    {
        Response::Loaded {
            rows,
            attrs,
            sample,
            cached,
        } => {
            assert_eq!(rows, 800);
            assert_eq!(attrs, 4);
            assert_eq!(sample, 40); // m=4, eps=0.01 → 40 tuples
            assert!(!cached);
        }
        other => panic!("expected loaded, got {other:?}"),
    }

    // audit answers from the registry, without re-reading the CSV.
    let audit = |client: &mut Client| match client
        .call(&Request::Audit {
            ds: ds.clone(),
            max_key_size: 2,
        })
        .unwrap()
    {
        Response::Audit { keys } => keys,
        other => panic!("expected audit, got {other:?}"),
    };
    let keys = audit(&mut client);
    assert!(
        keys.iter().any(|(names, _)| names == &["id".to_string()]),
        "id must be a minimal key: {keys:?}"
    );
    let again = audit(&mut client);
    assert_eq!(keys, again, "cached sample must answer deterministically");

    // check against the same cached sketch.
    match client
        .call(&Request::Check {
            ds: ds.clone(),
            attrs: vec!["sex".to_string()],
        })
        .unwrap()
    {
        Response::Check { attrs, accept } => {
            assert_eq!(attrs, vec!["sex".to_string()]);
            assert!(!accept, "sex alone cannot be a key");
        }
        other => panic!("expected check, got {other:?}"),
    }

    // metrics: exactly one build, everything after it a hit — the
    // second audit in particular.
    let report = metrics(&mut client);
    assert_eq!(report.cache_misses, 1, "only the load scans the file");
    assert!(
        report.cache_hits >= 3,
        "audit x2 + check must hit the cache: {report:?}"
    );
    assert_eq!(report.datasets, 1);
    let audit_stats = report.commands.iter().find(|c| c.name == "audit").unwrap();
    assert_eq!(audit_stats.count, 2);
    assert_eq!(audit_stats.errors, 0);

    server.shutdown();
}

#[test]
fn concurrent_clients_share_one_cached_sketch() {
    let csv = fixture_csv("concurrent.csv");
    let server = ServerUnderTest::spawn(4);
    let ds = server.ds(&csv, 0.01, 7);

    // Four clients race audits on a cold registry.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let mut client = server.client();
            let ds = ds.clone();
            scope.spawn(move || {
                match client
                    .call(&Request::Audit {
                        ds,
                        max_key_size: 2,
                    })
                    .unwrap()
                {
                    Response::Audit { keys } => {
                        assert!(keys.iter().any(|(names, _)| names == &["id".to_string()]))
                    }
                    other => panic!("expected audit, got {other:?}"),
                }
            });
        }
    });

    let mut client = server.client();
    let report = metrics(&mut client);
    assert_eq!(
        report.cache_misses, 1,
        "four concurrent audits must share one build: {report:?}"
    );
    assert_eq!(report.cache_hits, 3);
    assert_eq!(report.datasets, 1);

    server.shutdown();
}

#[test]
fn stream_entries_answer_stats_check_and_mask_without_upgrading() {
    // The Θ(m/√ε) memory pin (the tentpole regression test): on a
    // stream-loaded entry, `stats` answers from the per-column KMV
    // sketches, `check` from the sample, and `mask` plans on the
    // sample — ZERO materialisation upgrades and zero extra scans.
    let csv = fixture_csv("upgrade.csv");
    let server = ServerUnderTest::spawn(2);
    let mut client = server.client();
    let ds = server.ds(&csv, 0.01, 7);

    match client
        .call(&Request::Load {
            ds: ds.clone(),
            mode: LoadMode::Stream,
        })
        .unwrap()
    {
        Response::Loaded { rows, cached, .. } => {
            assert_eq!(rows, 800);
            assert!(!cached);
        }
        other => panic!("expected loaded, got {other:?}"),
    }

    // stats: stream length + KMV estimates, flagged inexact.
    match client.call(&Request::Stats { ds: ds.clone() }).unwrap() {
        Response::Stats {
            rows,
            exact,
            columns,
        } => {
            assert_eq!(rows, 800);
            assert!(!exact, "stream stats are estimates");
            assert_eq!(columns.len(), 4);
            assert!(columns.contains(&("sex".to_string(), 2)), "{columns:?}");
            assert!(columns.contains(&("zip".to_string(), 40)), "{columns:?}");
            let (_, id_distinct) = columns.iter().find(|(n, _)| n == "id").unwrap();
            let err = (*id_distinct as f64 - 800.0).abs() / 800.0;
            assert!(err < 0.25, "id estimate {id_distinct} too far from 800");
        }
        other => panic!("expected stats, got {other:?}"),
    }

    match client
        .call(&Request::Check {
            ds: ds.clone(),
            attrs: vec!["id".to_string()],
        })
        .unwrap()
    {
        Response::Check { accept, .. } => assert!(accept),
        other => panic!("expected check, got {other:?}"),
    }

    match client
        .call(&Request::Mask {
            ds: ds.clone(),
            budget: 1,
        })
        .unwrap()
    {
        Response::Mask {
            suppressed,
            full_data,
            ..
        } => {
            assert!(
                suppressed.contains(&"id".to_string()),
                "the id column must be suppressed: {suppressed:?}"
            );
            assert!(!full_data, "a stream entry masks on the sample");
        }
        other => panic!("expected mask, got {other:?}"),
    }

    let report = metrics(&mut client);
    assert_eq!(
        report.cache_upgrades, 0,
        "stats/check/mask on a stream entry must not materialise: {report:?}"
    );
    assert_eq!(report.cache_misses, 1, "only the load scanned: {report:?}");

    // An explicit memory-mode load is how an operator opts into exact
    // stats — it upgrades (one more scan, counted as such).
    match client
        .call(&Request::Load {
            ds: ds.clone(),
            mode: LoadMode::Memory,
        })
        .unwrap()
    {
        Response::Loaded { cached, .. } => assert!(!cached, "the upgrade pays a scan"),
        other => panic!("expected loaded, got {other:?}"),
    }
    match client.call(&Request::Stats { ds: ds.clone() }).unwrap() {
        Response::Stats { exact, columns, .. } => {
            assert!(exact, "materialised stats are exact");
            assert!(columns.contains(&("id".to_string(), 800)), "{columns:?}");
        }
        other => panic!("expected stats, got {other:?}"),
    }
    let report = metrics(&mut client);
    assert_eq!(report.cache_upgrades, 1, "{report:?}");
    assert_eq!(report.cache_misses, 2, "{report:?}");

    server.shutdown();
}

#[test]
fn sketch_answers_agree_with_a_direct_build_exactly() {
    // Acceptance: a served `sketch` on a stream-loaded dataset equals a
    // direct NonSeparationSketch built with the protocol's fixed
    // params and the same seed — bit-for-bit, including through the
    // JSON float round-trip.
    use quasi_id::core::stream::sketch_from_stream;
    use quasi_id::dataset::csv::{CsvOptions, CsvTupleSource};
    use quasi_id::dataset::AttrId;
    use quasi_id::server::sketch_params;

    let csv = fixture_csv("sketch.csv");
    let server = ServerUnderTest::spawn(2);
    let mut client = server.client();
    let ds = server.ds(&csv, 0.01, 7);
    match client
        .call(&Request::Load {
            ds: ds.clone(),
            mode: LoadMode::Stream,
        })
        .unwrap()
    {
        Response::Loaded { .. } => {}
        other => panic!("expected loaded, got {other:?}"),
    }

    let mut source = CsvTupleSource::open(&csv, &CsvOptions::default()).unwrap();
    let direct = sketch_from_stream(&mut source, sketch_params(), 7).unwrap();

    // sex (index 3) is dense: half of all pairs agree on it.
    for (attr_name, attr_id) in [("sex", 3), ("zip", 1)] {
        let response = client
            .call(&Request::Sketch {
                ds: ds.clone(),
                attrs: vec![attr_name.to_string()],
            })
            .unwrap();
        let attrs = vec![AttrId::new(attr_id)];
        match response {
            Response::Sketch {
                estimate,
                raw_pairs,
                sample_pairs,
                ..
            } => {
                assert_eq!(raw_pairs, direct.raw_count(&attrs), "{attr_name}");
                assert_eq!(sample_pairs, direct.sample_size());
                assert_eq!(
                    estimate,
                    direct.query(&attrs).estimate(),
                    "{attr_name}: served estimate must equal the direct build exactly"
                );
            }
            other => panic!("expected sketch, got {other:?}"),
        }
    }

    // The id key answers "small" with a zero raw count.
    match client
        .call(&Request::Sketch {
            ds: ds.clone(),
            attrs: vec!["id".to_string()],
        })
        .unwrap()
    {
        Response::Sketch {
            estimate,
            raw_pairs,
            ..
        } => {
            assert_eq!(estimate, None, "a key is never dense");
            assert_eq!(raw_pairs, direct.raw_count(&[AttrId::new(0)]));
        }
        other => panic!("expected sketch, got {other:?}"),
    }

    // The sketch build cost exactly one extra scan (load + sketch),
    // and repeated sketch queries hit the cached artifact.
    let report = metrics(&mut client);
    assert_eq!(report.cache_misses, 2, "{report:?}");
    let sketch_stats = report.commands.iter().find(|c| c.name == "sketch").unwrap();
    assert_eq!(sketch_stats.count, 3);
    assert_eq!(sketch_stats.errors, 0);

    server.shutdown();
}

#[test]
fn concurrent_sketch_queries_collapse_onto_one_build() {
    let csv = fixture_csv("sketch-race.csv");
    let server = ServerUnderTest::spawn(4);
    let ds = server.ds(&csv, 0.01, 7);

    // Warm the entry itself so the assertion isolates the sketch slot.
    let mut client = server.client();
    match client
        .call(&Request::Load {
            ds: ds.clone(),
            mode: LoadMode::Stream,
        })
        .unwrap()
    {
        Response::Loaded { .. } => {}
        other => panic!("expected loaded, got {other:?}"),
    }

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let mut client = server.client();
            let ds = ds.clone();
            scope.spawn(move || {
                match client
                    .call(&Request::Sketch {
                        ds,
                        attrs: vec!["sex".to_string()],
                    })
                    .unwrap()
                {
                    Response::Sketch { sample_pairs, .. } => assert!(sample_pairs > 0),
                    other => panic!("expected sketch, got {other:?}"),
                }
            });
        }
    });

    let report = metrics(&mut client);
    assert_eq!(
        report.cache_misses, 2,
        "sample build + exactly one sketch build: {report:?}"
    );

    server.shutdown();
}

#[test]
fn a_batch_resolves_each_dataset_key_exactly_once() {
    // Acceptance: k sub-commands over one dataset = one registry
    // lookup-or-build for the whole batch.
    let csv = fixture_csv("batch.csv");
    let server = ServerUnderTest::spawn(2);
    let mut client = server.client();
    let ds = server.ds(&csv, 0.01, 7);

    match client
        .call(&Request::Load {
            ds: ds.clone(),
            mode: LoadMode::Stream,
        })
        .unwrap()
    {
        Response::Loaded { .. } => {}
        other => panic!("expected loaded, got {other:?}"),
    }
    let before = metrics(&mut client);
    assert_eq!(before.cache_misses, 1);

    let batch = Request::Batch {
        requests: vec![
            Request::Audit {
                ds: ds.clone(),
                max_key_size: 2,
            },
            Request::Check {
                ds: ds.clone(),
                attrs: vec!["id".to_string()],
            },
            Request::Stats { ds: ds.clone() },
            Request::Key { ds: ds.clone() },
            Request::Check {
                ds: ds.clone(),
                attrs: vec!["no_such_column".to_string()],
            },
        ],
    };
    match client.call(&batch).unwrap() {
        Response::Batch { results } => {
            assert_eq!(results.len(), 5);
            assert!(matches!(results[0], Response::Audit { .. }));
            assert!(matches!(results[1], Response::Check { accept: true, .. }));
            assert!(matches!(results[2], Response::Stats { exact: false, .. }));
            assert!(matches!(results[3], Response::Key { .. }));
            // Sub-command errors are inline results, not connection
            // failures.
            assert!(matches!(results[4], Response::Error { .. }));
        }
        other => panic!("expected batch, got {other:?}"),
    }

    let after = metrics(&mut client);
    assert_eq!(
        after.cache_hits,
        before.cache_hits + 1,
        "five sub-commands, one registry resolution: {after:?}"
    );
    assert_eq!(after.cache_misses, before.cache_misses, "{after:?}");
    // Sub-commands are metered individually, plus the batch line.
    let count_of = |report: &quasi_id::server::MetricsReport, name: &str| {
        report
            .commands
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.count)
    };
    assert_eq!(count_of(&after, "batch"), 1);
    assert_eq!(count_of(&after, "audit"), 1);
    assert_eq!(count_of(&after, "check"), 2);
    let check = after.commands.iter().find(|c| c.name == "check").unwrap();
    assert_eq!(check.errors, 1, "the bad column counts as a check error");

    server.shutdown();
}

#[test]
fn shutdown_completes_under_a_busy_client() {
    // A client that never goes idle must not be able to hold the
    // drain open: the server stops each connection after its in-flight
    // request once shutdown is flagged.
    let server = ServerUnderTest::spawn(2);
    let mut busy = server.client();
    let hammer = std::thread::spawn(move || {
        let mut answered = 0u32;
        // Loop until the server closes the connection under us.
        while busy.call(&Request::Metrics).is_ok() {
            answered += 1;
        }
        answered
    });
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown(); // asserts the process actually exits
    let answered = hammer.join().expect("busy client thread exits");
    assert!(answered > 0, "the busy client was being served");
}

#[test]
fn errors_are_answers_not_disconnects() {
    let server = ServerUnderTest::spawn(1);
    let mut client = server.client();

    // Missing file.
    match client
        .call(&Request::Key {
            ds: DatasetRef {
                path: "/definitely/not/here.csv".to_string(),
                eps: 0.01,
                seed: 7,
            },
        })
        .unwrap()
    {
        Response::Error { message } => assert!(message.contains("not/here.csv")),
        other => panic!("expected error, got {other:?}"),
    }

    // Unknown attribute on a real file.
    let csv = fixture_csv("errors.csv");
    match client
        .call(&Request::Check {
            ds: server.ds(&csv, 0.01, 7),
            attrs: vec!["no_such_column".to_string()],
        })
        .unwrap()
    {
        Response::Error { message } => assert!(message.contains("unknown attribute")),
        other => panic!("expected error, got {other:?}"),
    }

    // The same connection still answers after both errors.
    match client
        .call(&Request::Check {
            ds: server.ds(&csv, 0.01, 7),
            attrs: vec!["id".to_string()],
        })
        .unwrap()
    {
        Response::Check { accept, .. } => assert!(accept),
        other => panic!("expected check, got {other:?}"),
    }

    server.shutdown();
}

#[test]
fn qid_query_cli_talks_to_the_server() {
    let csv = fixture_csv("cli.csv");
    let server = ServerUnderTest::spawn(2);

    let run = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_qid"))
            .args(args)
            .output()
            .expect("qid query runs");
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            out.status.success(),
        )
    };
    let csv = csv.to_str().unwrap();

    let (stdout, ok) = run(&["query", &server.addr, "load", csv, "--eps", "0.01"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("800 rows x 4 attributes"), "{stdout}");

    let (stdout, ok) = run(&[
        "query",
        &server.addr,
        "check",
        csv,
        "--attrs",
        "id",
        "--eps",
        "0.01",
    ]);
    assert!(ok);
    assert!(stdout.contains("Accept"), "{stdout}");

    let (stdout, ok) = run(&[
        "query",
        &server.addr,
        "sketch",
        csv,
        "--attrs",
        "sex",
        "--eps",
        "0.01",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("unseparated pairs"), "{stdout}");

    let (stdout, ok) = run(&["query", &server.addr, "metrics"]);
    assert!(ok);
    assert!(stdout.contains("cache hits"), "{stdout}");

    // batch -: NDJSON sub-commands on stdin, one wire line out.
    let mut child = Command::new(env!("CARGO_BIN_EXE_qid"))
        .args(["query", &server.addr, "batch", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("qid query batch spawns");
    let stdin_lines = format!(
        "{}\n{}\n",
        quasi_id::server::Request::Check {
            ds: DatasetRef {
                path: csv.to_string(),
                eps: 0.01,
                seed: 7,
            },
            attrs: vec!["id".to_string()],
        }
        .encode(),
        quasi_id::server::Request::Stats {
            ds: DatasetRef {
                path: csv.to_string(),
                eps: 0.01,
                seed: 7,
            },
        }
        .encode(),
    );
    child
        .stdin
        .take()
        .unwrap()
        .write_all(stdin_lines.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("batch completes");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Accept"), "{stdout}");
    assert!(stdout.contains("batch: 2 results"), "{stdout}");

    server.shutdown();
}

#[test]
fn restart_with_cache_dir_answers_without_rescanning() {
    // The acceptance test for the registry's disk tier: a server
    // restarted over the same --cache-dir answers a previously-loaded
    // audit with ZERO new build misses (no source scan) and the exact
    // same keys, because the persisted Θ(m/√ε) sample is the sketch.
    // With the registry journal armed (the --cache-dir default) the
    // restart also replays the journal: the first life's counters
    // resume and the entry is re-admitted eagerly at boot.
    let dir = scratch_dir("restart");
    let cache = dir.join("cache");
    let csv = dir.join("restart.csv");
    write_fixture(&csv, 800);
    let cache_flag = cache.to_str().unwrap().to_string();

    let audit = |client: &mut Client, ds: &DatasetRef| match client
        .call(&Request::Audit {
            ds: ds.clone(),
            max_key_size: 2,
        })
        .unwrap()
    {
        Response::Audit { keys } => keys,
        other => panic!("expected audit, got {other:?}"),
    };

    let server = ServerUnderTest::spawn_with(2, &["--cache-dir", &cache_flag]);
    let ds = server.ds(&csv, 0.01, 7);
    let mut client = server.client();
    let first_keys = audit(&mut client, &ds);
    assert!(!first_keys.is_empty());
    assert_eq!(metrics(&mut client).cache_misses, 1, "the cold scan");
    server.shutdown();

    let server = ServerUnderTest::spawn_with(2, &["--cache-dir", &cache_flag]);
    let mut client = server.client();
    let warm_keys = audit(&mut client, &ds);
    assert_eq!(
        warm_keys, first_keys,
        "the restored sample is the same sample"
    );
    let report = metrics(&mut client);
    // misses == 1 is the first life's cold scan, resumed through the
    // journal — a re-scan on this side of the restart would make it 2.
    assert_eq!(
        report.cache_misses, 1,
        "a warm restart must not re-scan the source: {report:?}"
    );
    assert_eq!(report.cache_disk_hits, 1, "restored from the disk tier");
    assert_eq!(report.restarts, 1, "the journal counted the prior life");
    assert!(
        report.wal_replayed_events > 0,
        "the restart replayed the journal: {report:?}"
    );
    assert_eq!(report.datasets, 1);
    server.shutdown();
}

#[test]
fn rewriting_the_csv_in_place_triggers_a_rebuild() {
    let dir = scratch_dir("stale");
    let csv = dir.join("stale.csv");
    write_fixture(&csv, 800);

    let server = ServerUnderTest::spawn(2);
    let ds = server.ds(&csv, 0.01, 7);
    let mut client = server.client();
    let load = |client: &mut Client, ds: &DatasetRef| match client
        .call(&Request::Load {
            ds: ds.clone(),
            mode: LoadMode::Stream,
        })
        .unwrap()
    {
        Response::Loaded { rows, cached, .. } => (rows, cached),
        other => panic!("expected loaded, got {other:?}"),
    };
    assert_eq!(load(&mut client, &ds), (800, false));
    assert_eq!(load(&mut client, &ds), (800, true), "second load is a hit");

    // Growing the fixture keeps the old 800 rows as an intact prefix,
    // so this is an *append*, not a rewrite: the entry absorbs the
    // suffix and the load is still a hit.
    write_fixture(&csv, 850);
    assert_eq!(
        load(&mut client, &ds),
        (850, true),
        "a pure append is absorbed, not rebuilt"
    );
    let report = metrics(&mut client);
    assert_eq!(report.cache_append_updates, 1, "{report:?}");
    assert_eq!(report.cache_stale_rebuilds, 0, "{report:?}");

    // A genuine rewrite: different length AND different content from
    // the first data row on, so the prefix fingerprint cannot match.
    {
        let mut f = std::fs::File::create(&csv).unwrap();
        writeln!(f, "id,zip,age,sex").unwrap();
        for i in 0..900 {
            writeln!(
                f,
                "{i},{},{},{}",
                50100 + i % 40,
                18 + (i * 7) % 60,
                if i % 2 == 0 { "M" } else { "F" }
            )
            .unwrap();
        }
    }
    let (rows, cached) = load(&mut client, &ds);
    assert_eq!(
        rows, 900,
        "the rebuilt entry sees the new file, not stale data"
    );
    assert!(!cached, "a stale entry is not served as a hit");
    let report = metrics(&mut client);
    assert_eq!(report.cache_stale_rebuilds, 1, "{report:?}");
    assert_eq!(report.cache_misses, 2, "cold build + stale rebuild");
    assert_eq!(report.datasets, 1, "the stale entry was replaced, not kept");
    server.shutdown();
}

#[test]
fn cache_budget_evicts_lru_entries() {
    let dir = scratch_dir("evict");
    let a = dir.join("a.csv");
    let b = dir.join("b.csv");
    write_fixture(&a, 800);
    write_fixture(&b, 800);

    // Measure one stream entry's resident bytes (sample + column
    // sketches) on a budget-less server, then restart with a budget
    // that fits one entry but not two.
    let per_entry = {
        let probe = ServerUnderTest::spawn(1);
        let mut client = probe.client();
        match client
            .call(&Request::Load {
                ds: probe.ds(&a, 0.01, 7),
                mode: LoadMode::Stream,
            })
            .unwrap()
        {
            Response::Loaded { .. } => {}
            other => panic!("expected loaded, got {other:?}"),
        }
        let bytes = metrics(&mut client).cache_bytes;
        probe.shutdown();
        bytes
    };
    let budget = (per_entry + per_entry / 2).to_string();
    let server = ServerUnderTest::spawn_with(2, &["--cache-bytes", &budget]);
    let mut client = server.client();
    for path in [&a, &b] {
        match client
            .call(&Request::Load {
                ds: server.ds(path, 0.01, 7),
                mode: LoadMode::Stream,
            })
            .unwrap()
        {
            Response::Loaded { cached, .. } => assert!(!cached),
            other => panic!("expected loaded, got {other:?}"),
        }
    }
    let report = metrics(&mut client);
    assert_eq!(report.cache_evictions, 1, "{report:?}");
    assert_eq!(report.datasets, 1, "only the most recent entry survives");
    assert!(
        report.cache_bytes <= per_entry + per_entry / 2,
        "{report:?}"
    );

    // The survivor is b (a was the LRU victim): touching b is a hit.
    match client
        .call(&Request::Load {
            ds: server.ds(&b, 0.01, 7),
            mode: LoadMode::Stream,
        })
        .unwrap()
    {
        Response::Loaded { cached, .. } => assert!(cached, "b must still be resident"),
        other => panic!("expected loaded, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn unload_drops_the_entry_and_the_cli_drives_it() {
    let dir = scratch_dir("unload");
    let csv = dir.join("u.csv");
    write_fixture(&csv, 800);
    let server = ServerUnderTest::spawn(2);
    let ds = server.ds(&csv, 0.01, 7);
    let mut client = server.client();
    match client
        .call(&Request::Load {
            ds: ds.clone(),
            mode: LoadMode::Stream,
        })
        .unwrap()
    {
        Response::Loaded { .. } => {}
        other => panic!("expected loaded, got {other:?}"),
    }
    assert_eq!(metrics(&mut client).datasets, 1);

    // Drive unload through the CLI, like an operator would.
    let out = Command::new(env!("CARGO_BIN_EXE_qid"))
        .args([
            "query",
            &server.addr,
            "unload",
            csv.to_str().unwrap(),
            "--eps",
            "0.01",
        ])
        .output()
        .expect("qid query unload runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dropped"), "{stdout}");

    let report = metrics(&mut client);
    assert_eq!(report.datasets, 0, "{report:?}");
    assert_eq!(report.cache_bytes, 0, "{report:?}");
    // Unloading again reports that nothing was there.
    match client.call(&Request::Unload { ds: ds.clone() }).unwrap() {
        Response::Unloaded { existed } => assert!(!existed),
        other => panic!("expected unloaded, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn metrics_report_server_side_percentiles() {
    let server = ServerUnderTest::spawn(1);
    let mut client = server.client();
    for _ in 0..20 {
        let _ = client.call(&Request::Metrics).unwrap();
    }
    let report = metrics(&mut client);
    let m = report
        .commands
        .iter()
        .find(|c| c.name == "metrics")
        .unwrap();
    assert!(m.count >= 20);
    assert!(m.p50_us > 0, "histogram quantiles are populated: {m:?}");
    assert!(m.p50_us <= m.p99_us, "{m:?}");
    server.shutdown();
}

// ------------------------------------------------- readiness core tests

/// Waits until the server has accepted at least `n` connections (i.e.
/// the idle herd has been handed to the poller).
fn wait_for_connections(client: &mut Client, n: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        if metrics(client).connections >= n {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server accepted fewer than {n} connections in 30s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn raw_ndjson_session_over_a_plain_socket() {
    // The protocol is hand-writable: no client library required.
    let csv = fixture_csv("raw.csv");
    let server = ServerUnderTest::spawn(1);
    let stream = std::net::TcpStream::connect(server.addr.as_str()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let mut roundtrip = |line: String| -> String {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply
    };

    let reply = roundtrip(format!(
        r#"{{"cmd":"key","path":{:?},"eps":0.01}}"#,
        csv.to_str().unwrap()
    ));
    assert!(reply.contains(r#""ok":true"#), "{reply}");
    assert!(reply.contains("id"), "{reply}");

    let reply = roundtrip("this is not json".to_string());
    assert!(reply.contains(r#""ok":false"#), "{reply}");

    server.shutdown();
}

// ----------------------------------------------- hardening + soak tests

#[test]
fn rate_limited_lines_get_structured_errors_and_survive() {
    let server = ServerUnderTest::spawn_with(2, &["--max-rps", "2"]);
    let mut client = server.client();

    // Hammer one connection far past its 2 req/s budget: the first
    // burst is answered, the overflow gets structured `rate_limited`
    // replies (not disconnects), and the connection keeps working.
    let mut answered = 0u32;
    let mut limited = 0u32;
    for _ in 0..10 {
        match client.call(&Request::Metrics).expect("connection survives") {
            Response::Metrics(_) => answered += 1,
            Response::RateLimited { max_rps } => {
                assert_eq!(max_rps, 2);
                limited += 1;
            }
            other => panic!("expected metrics or rate_limited, got {other:?}"),
        }
    }
    assert!(answered >= 1, "the burst budget admits at least one");
    assert!(limited >= 1, "10 instant requests must overflow 2 rps");

    // The bucket refills: after a second the same connection answers.
    std::thread::sleep(Duration::from_millis(1100));
    match client.call(&Request::Metrics).expect("refilled") {
        Response::Metrics(report) => {
            assert!(
                report.rejected_rate >= u64::from(limited),
                "rejections are surfaced in metrics: {report:?}"
            );
        }
        other => panic!("expected metrics after refill, got {other:?}"),
    }

    server.shutdown();
}

#[test]
fn oversized_lines_are_rejected_in_cap_memory_and_connection_survives() {
    // Acceptance: a 10x oversized request line is rejected with the
    // connection still usable (the framer discards it in O(cap)
    // memory — unit-tested in qid-server — so this exercises the wire
    // behaviour end to end).
    let server = ServerUnderTest::spawn_with(2, &["--max-line-bytes", "1K"]);
    let stream = std::net::TcpStream::connect(server.addr.as_str()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let mut roundtrip = |line: &[u8]| -> String {
        writer.write_all(line).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("server answers");
        reply
    };

    // 10x the cap of garbage: structured rejection, no disconnect.
    let reply = roundtrip(&vec![b'x'; 10 * 1024]);
    assert!(reply.contains(r#""kind":"line_too_long""#), "{reply}");
    assert!(reply.contains(r#""limit":1024"#), "{reply}");

    // The same connection still answers a valid request...
    let reply = roundtrip(br#"{"cmd":"metrics"}"#);
    assert!(reply.contains(r#""ok":true"#), "{reply}");

    // ...and a valid request padded to exactly the cap is served,
    // while one byte more is rejected (the cap is exact).
    let pad_to = |len: usize| -> Vec<u8> {
        let mut line = br#"{"cmd":"metrics"}"#.to_vec();
        line.resize(len, b' ');
        line
    };
    let reply = roundtrip(&pad_to(1024));
    assert!(
        reply.contains(r#""ok":true"#),
        "cap-sized line served: {reply}"
    );
    let reply = roundtrip(&pad_to(1025));
    assert!(reply.contains(r#""kind":"line_too_long""#), "{reply}");

    // Both rejections are surfaced in metrics.
    let reply = roundtrip(br#"{"cmd":"metrics"}"#);
    assert!(reply.contains(r#""rejected_oversize":2"#), "{reply}");

    server.shutdown();
}

#[test]
fn unterminated_final_line_is_answered_at_eof() {
    // NDJSON clients should newline-terminate, but `printf '…' | nc`
    // half-closes after an unterminated request — which has always
    // been answered. The framer must surrender the EOF tail, not
    // swallow it.
    let server = ServerUnderTest::spawn(1);
    let stream = std::net::TcpStream::connect(server.addr.as_str()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer.write_all(br#"{"cmd":"metrics"}"#).unwrap(); // no newline
    writer.flush().unwrap();
    writer.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("EOF tail is answered");
    assert!(reply.contains(r#""kind":"metrics""#), "{reply:?}");
    // After the answer the server closes its half too.
    let mut rest = String::new();
    reader.read_line(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection closed after the EOF tail");
    server.shutdown();
}

#[test]
fn poll_backend_fallback_serves_a_full_session() {
    // The poll(2) fallback must carry a real session end to end, so a
    // non-epoll platform (or QID_POLL_BACKEND=poll) is not a paper
    // config.
    let csv = fixture_csv("pollback.csv");
    let server = ServerUnderTest::spawn_full(2, &[], &[("QID_POLL_BACKEND", "poll")], false);
    assert!(
        server.announce.contains("poller = poll"),
        "fallback backend announced: {}",
        server.announce
    );
    let mut client = server.client();
    let ds = server.ds(&csv, 0.01, 7);
    match client
        .call(&Request::Load {
            ds: ds.clone(),
            mode: LoadMode::Stream,
        })
        .unwrap()
    {
        Response::Loaded { rows, .. } => assert_eq!(rows, 800),
        other => panic!("expected loaded, got {other:?}"),
    }
    match client
        .call(&Request::Check {
            ds,
            attrs: vec!["id".to_string()],
        })
        .unwrap()
    {
        Response::Check { accept, .. } => assert!(accept),
        other => panic!("expected check, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_and_closes_poller_idle_connections() {
    // The drain regression test: N connections idle in the poller, one
    // request mid-flight. `shutdown` must (a) answer the in-flight
    // request, (b) EOF the idle sockets, (c) exit cleanly with no
    // worker panic on stderr.
    let dir = scratch_dir("drain");
    let csv = dir.join("big.csv");
    {
        // Big enough that the memory-mode load is still scanning when
        // the shutdown lands.
        let mut f = std::io::BufWriter::new(std::fs::File::create(&csv).unwrap());
        writeln!(f, "id,zip,age,sex").unwrap();
        for i in 0..150_000u64 {
            writeln!(
                f,
                "{i},{},{},{}",
                92100 + i % 40,
                18 + (i * 7) % 60,
                if i % 2 == 0 { "M" } else { "F" }
            )
            .unwrap();
        }
    }

    let mut server = ServerUnderTest::spawn_full(2, &[], &[], true);

    let idles: Vec<std::net::TcpStream> = (0..20)
        .map(|_| std::net::TcpStream::connect(server.addr.as_str()).unwrap())
        .collect();
    let mut mclient = server.client();
    wait_for_connections(&mut mclient, 21); // 20 idles + this client

    // Mid-flight request on a raw socket (no read yet).
    let inflight = std::net::TcpStream::connect(server.addr.as_str()).unwrap();
    inflight
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut inflight_reader = BufReader::new(inflight.try_clone().unwrap());
    let mut inflight_writer = inflight;
    writeln!(
        inflight_writer,
        r#"{{"cmd":"load","path":{:?},"eps":0.01,"seed":7,"mode":"memory"}}"#,
        csv.to_str().unwrap()
    )
    .unwrap();
    inflight_writer.flush().unwrap();
    // Give the poller time to dispatch it to a worker (the scan itself
    // runs long past this).
    std::thread::sleep(Duration::from_millis(150));

    let mut shutter = server.client();
    assert_eq!(
        shutter.call(&Request::Shutdown).expect("shutdown answered"),
        Response::ShuttingDown
    );

    // (a) The in-flight response arrives, complete and successful.
    let mut reply = String::new();
    inflight_reader
        .read_line(&mut reply)
        .expect("in-flight response readable");
    assert!(
        reply.contains(r#""kind":"loaded""#),
        "in-flight load must be answered, got: {reply:?}"
    );

    // (b) Every idle socket sees EOF (drained, not abandoned).
    for idle in &idles {
        idle.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut buf = [0u8; 16];
        let n = (&mut &*idle).read(&mut buf).expect("idle socket readable");
        assert_eq!(n, 0, "idle poller connections get EOF on drain");
    }

    // (c) Clean exit, no panic in the logs.
    let status = server.child.wait().expect("server exits");
    assert!(status.success(), "server exit status: {status:?}");
    let mut stderr = String::new();
    server
        .child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut stderr)
        .unwrap();
    assert!(
        !stderr.to_lowercase().contains("panic"),
        "no worker may panic during the drain:\n{stderr}"
    );
}

/// Drives one server with `idle` quiet keep-alive connections plus 8
/// active clients issuing audit/sketch/batch, asserts every request is
/// answered, dumps the metrics report to `target/soak/`, and returns
/// the served p99 per driven command.
fn soak_run(idle: usize, tag: &str) -> std::collections::BTreeMap<String, u64> {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 12;

    let csv = fixture_csv(&format!("soak-{tag}.csv"));
    // Two poller shards: the soak must hold with connections split
    // across shards, not just on the single-poller fast path.
    let server = ServerUnderTest::spawn_with(4, &["--pollers", "2"]);
    let ds = server.ds(&csv, 0.01, 7);
    let mut client = server.client();
    match client
        .call(&Request::Load {
            ds: ds.clone(),
            mode: LoadMode::Stream,
        })
        .unwrap()
    {
        Response::Loaded { .. } => {}
        other => panic!("expected loaded, got {other:?}"),
    }

    // The idle herd: connected, registered with the poller, silent.
    let idles: Vec<std::net::TcpStream> = (0..idle)
        .map(|_| std::net::TcpStream::connect(server.addr.as_str()).unwrap())
        .collect();
    wait_for_connections(&mut client, idle as u64 + 1);

    // 8 active clients drive audit/sketch/batch through the herd.
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let ds = ds.clone();
            let server = &server;
            scope.spawn(move || {
                let mut client = server.client();
                for _ in 0..ROUNDS {
                    match client
                        .call(&Request::Audit {
                            ds: ds.clone(),
                            max_key_size: 2,
                        })
                        .expect("audit answered under idle load")
                    {
                        Response::Audit { .. } => {}
                        other => panic!("expected audit, got {other:?}"),
                    }
                    match client
                        .call(&Request::Sketch {
                            ds: ds.clone(),
                            attrs: vec!["sex".to_string()],
                        })
                        .expect("sketch answered under idle load")
                    {
                        Response::Sketch { .. } => {}
                        other => panic!("expected sketch, got {other:?}"),
                    }
                    match client
                        .call(&Request::Batch {
                            requests: vec![
                                Request::Check {
                                    ds: ds.clone(),
                                    attrs: vec!["id".to_string()],
                                },
                                Request::Stats { ds: ds.clone() },
                            ],
                        })
                        .expect("batch answered under idle load")
                    {
                        Response::Batch { results } => assert_eq!(results.len(), 2),
                        other => panic!("expected batch, got {other:?}"),
                    }
                }
            });
        }
    });

    let report = metrics(&mut client);
    // Dump the full report for CI artifacts before any assertion can
    // fail.
    let soak_dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/soak");
    std::fs::create_dir_all(&soak_dir).unwrap();
    std::fs::write(
        soak_dir.join(format!("metrics-{tag}.json")),
        format!("{}\n", Response::Metrics(report.clone()).encode()),
    )
    .unwrap();

    // Every request was answered (the calls above assert transport
    // success; this asserts server-side accounting agrees).
    let expect = (CLIENTS * ROUNDS) as u64;
    let mut p99s = std::collections::BTreeMap::new();
    for name in ["audit", "sketch", "batch"] {
        let stats = report
            .commands
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("{name} stats present"));
        assert_eq!(stats.count, expect, "{name}: every request answered");
        assert_eq!(stats.errors, 0, "{name}: no errors under idle load");
        p99s.insert(name.to_string(), stats.p99_us);
    }
    drop(idles);
    server.shutdown();
    p99s
}

#[test]
fn soak_idle_connections_do_not_degrade_served_p99() {
    // The soak test: a herd of idle keep-alive connections must not
    // cost the active clients their latency. With the previous
    // time-sliced core, 500 idles × a blocked 150 ms read each would
    // starve the pool for tens of seconds per cycle; with the
    // readiness core they are O(1) registrations the pollers never
    // visit while quiet. `QID_SOAK_IDLE` scales the herd (CI runs
    // 2000; the default keeps local `cargo test` snappy).
    let idle: usize = std::env::var("QID_SOAK_IDLE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);
    let baseline = soak_run(10, "baseline-10");
    let soak = soak_run(idle, &format!("soak-{idle}"));
    // p99s come from log₂ histogram bucket edges (each bucket is 2×
    // the previous), so the 3× budget is one bucket of drift. The
    // absolute floor absorbs scheduler noise when both runs are
    // already fast — the failure mode this guards against (idle
    // connections re-entering the worker pool) costs *seconds*, not
    // single-digit milliseconds.
    const FLOOR_US: u64 = 8191; // bucket edge ≈ 8 ms
    for (name, base_p99) in &baseline {
        let soak_p99 = soak[name];
        assert!(
            soak_p99 <= (base_p99 * 3).max(FLOOR_US),
            "{name}: p99 {soak_p99}µs with {idle} idles vs {base_p99}µs with 10 \
             (dumps in target/soak/)"
        );
    }
}

#[test]
fn trace_reports_recent_spans_newest_first_and_the_cli_renders_them() {
    let dir = scratch_dir("trace");
    let csv = dir.join("t.csv");
    write_fixture(&csv, 800);
    let server = ServerUnderTest::spawn(2);
    let ds = server.ds(&csv, 0.01, 7);
    let mut client = server.client();
    match client
        .call(&Request::Load {
            ds: ds.clone(),
            mode: LoadMode::Stream,
        })
        .unwrap()
    {
        Response::Loaded { .. } => {}
        other => panic!("expected loaded, got {other:?}"),
    }
    for _ in 0..8 {
        match client
            .call(&Request::Check {
                ds: ds.clone(),
                attrs: vec!["id".to_string()],
            })
            .unwrap()
        {
            Response::Check { .. } => {}
            other => panic!("expected check, got {other:?}"),
        }
    }

    // Unfiltered trace: newest-first ids, and both commands present.
    let spans = match client
        .call(&Request::Trace {
            last: 50,
            command: None,
            min_us: 0,
        })
        .unwrap()
    {
        Response::Trace { spans } => spans,
        other => panic!("expected trace, got {other:?}"),
    };
    assert!(spans.len() >= 9, "load + 8 checks recorded: {spans:?}");
    assert!(
        spans.windows(2).all(|w| w[0].id > w[1].id),
        "spans must be newest-first with distinct ids: {spans:?}"
    );
    assert!(spans.iter().any(|s| s.command == "load"), "{spans:?}");

    // Command filter narrows to checks only, and each span carries the
    // same resolved cache key plus real sizes.
    let checks = match client
        .call(&Request::Trace {
            last: 50,
            command: Some("check".to_string()),
            min_us: 0,
        })
        .unwrap()
    {
        Response::Trace { spans } => spans,
        other => panic!("expected trace, got {other:?}"),
    };
    assert_eq!(checks.len(), 8, "{checks:?}");
    for span in &checks {
        assert_eq!(span.command, "check");
        assert_eq!(span.outcome, "ok");
        assert_eq!(span.key.len(), 16, "16 hex digits: {span:?}");
        assert!(span.bytes_in > 0 && span.bytes_out > 0, "{span:?}");
    }
    assert!(
        checks.windows(2).all(|w| w[0].key == w[1].key),
        "one dataset, one key: {checks:?}"
    );

    // An impossible min_us filter (≈ 35 years, and exactly
    // representable as a JSON number) yields an empty, valid answer.
    match client
        .call(&Request::Trace {
            last: 50,
            command: None,
            min_us: 1 << 50,
        })
        .unwrap()
    {
        Response::Trace { spans } => assert!(spans.is_empty(), "{spans:?}"),
        other => panic!("expected trace, got {other:?}"),
    }

    // The CLI renders a table of the same data.
    let out = Command::new(env!("CARGO_BIN_EXE_qid"))
        .args([
            "query",
            &server.addr,
            "trace",
            "--last",
            "5",
            "--command",
            "check",
        ])
        .output()
        .expect("qid query trace runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("command"), "header row: {stdout}");
    assert!(stdout.contains("trace: 5 spans"), "{stdout}");
    server.shutdown();
}

#[test]
fn unload_all_purges_the_whole_cache_and_the_cli_drives_it() {
    let dir = scratch_dir("unload-all");
    let a = dir.join("a.csv");
    let b = dir.join("b.csv");
    write_fixture(&a, 800);
    write_fixture(&b, 600);
    let server = ServerUnderTest::spawn(2);
    let mut client = server.client();
    for (path, seed) in [(&a, 7u64), (&b, 8u64)] {
        match client
            .call(&Request::Load {
                ds: server.ds(path, 0.01, seed),
                mode: LoadMode::Stream,
            })
            .unwrap()
        {
            Response::Loaded { .. } => {}
            other => panic!("expected loaded, got {other:?}"),
        }
    }
    assert_eq!(metrics(&mut client).datasets, 2);

    // `qid query <addr> unload --all`, as an operator would run it.
    let out = Command::new(env!("CARGO_BIN_EXE_qid"))
        .args(["query", &server.addr, "unload", "--all"])
        .output()
        .expect("qid query unload --all runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dropped"), "{stdout}");

    let report = metrics(&mut client);
    assert_eq!(report.datasets, 0, "{report:?}");
    assert_eq!(report.cache_bytes, 0, "{report:?}");

    // A second purge finds an already-empty cache.
    match client.call(&Request::UnloadAll).unwrap() {
        Response::Unloaded { existed } => assert!(!existed),
        other => panic!("expected unloaded, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn flight_recorder_flags_announce_and_log_ndjson_events() {
    let dir = scratch_dir("flags");
    let csv = dir.join("f.csv");
    write_fixture(&csv, 800);
    let mut server = ServerUnderTest::spawn_full(
        1,
        &["--metrics-addr", "127.0.0.1:0", "--log-json"],
        &[],
        true,
    );
    assert!(
        server.announce.contains("metrics = 127.0.0.1:"),
        "announce line names the metrics listener: {}",
        server.announce
    );

    let mut client = server.client();
    match client
        .call(&Request::Load {
            ds: server.ds(&csv, 0.01, 7),
            mode: LoadMode::Stream,
        })
        .unwrap()
    {
        Response::Loaded { .. } => {}
        other => panic!("expected loaded, got {other:?}"),
    }
    match client.call(&Request::UnloadAll).unwrap() {
        Response::Unloaded { existed } => assert!(existed),
        other => panic!("expected unloaded, got {other:?}"),
    }
    assert_eq!(
        client.call(&Request::Shutdown).expect("shutdown answered"),
        Response::ShuttingDown
    );
    let status = server.child.wait().expect("server exits");
    assert!(status.success(), "server exit status: {status:?}");

    // The NDJSON event log recorded the cache lifecycle.
    let mut stderr = String::new();
    server
        .child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut stderr)
        .unwrap();
    assert!(
        stderr.contains(r#""event":"cache_build""#),
        "cache_build logged:\n{stderr}"
    );
    assert!(
        stderr.contains(r#""event":"cache_purge""#),
        "cache_purge logged:\n{stderr}"
    );
    for line in stderr.lines().filter(|l| l.contains(r#""event":"#)) {
        assert!(
            line.starts_with(r#"{"ts_ms":"#) && line.ends_with('}'),
            "NDJSON shape: {line:?}"
        );
    }
}
