//! Protocol conformance suite.
//!
//! Two layers of defence for the NDJSON wire protocol:
//!
//! 1. **Golden fixtures.** `tests/golden/proto_conformance.ndjson`
//!    holds one canonical wire line for every `Request` command and
//!    every `Response` kind. The suite checks (a) that the committed
//!    file matches the canonical corpus produced by the current code
//!    (so any change to `encode` shows up as a reviewable diff), and
//!    (b) that every golden line decodes and re-encodes byte-exactly
//!    (so `decode ∘ encode = id` on canonical lines). On mismatch the
//!    expected/actual corpora are written to `target/proto-conformance/`
//!    for CI to upload. Regenerate deliberately with
//!    `QID_REGEN_GOLDEN=1 cargo test --test proto_conformance`.
//! 2. **Malformed-line fuzzing.** Proptest-generated garbage
//!    (truncated JSON, wrong types, unknown commands, huge numbers,
//!    pathological nesting) is thrown at a live in-process server; each
//!    line must produce one structured `{"ok":false,"kind":"error"}`
//!    reply and leave the connection answering valid requests.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;
use quasi_id::server::json;
use quasi_id::server::metrics::COMMAND_NAMES;
use quasi_id::server::proto::{
    sketch_params, CommandStats, DatasetRef, LoadMode, MetricsReport, Request, Response, TraceSpan,
};
use quasi_id::server::{Server, ServerConfig};

const GOLDEN: &str = include_str!("golden/proto_conformance.ndjson");

/// Every response `kind` the protocol can emit.
const RESPONSE_KINDS: [&str; 16] = [
    "loaded",
    "audit",
    "key",
    "check",
    "sketch",
    "mask",
    "stats",
    "batch",
    "unloaded",
    "metrics",
    "trace",
    "bye",
    "line_too_long",
    "rate_limited",
    "too_busy",
    "error",
];

fn ds() -> DatasetRef {
    DatasetRef {
        path: "/data/people.csv".into(),
        eps: 0.01,
        seed: 7,
    }
}

/// The canonical corpus: at least one wire line per request command
/// and per response kind, with representative payload shapes (empty
/// and non-empty lists, null and present optionals, huge seeds).
fn corpus() -> Vec<String> {
    let requests = vec![
        Request::Load {
            ds: ds(),
            mode: LoadMode::Memory,
        },
        Request::Load {
            ds: DatasetRef {
                path: "/data/données 😀.csv".into(),
                eps: 0.001,
                seed: u64::MAX,
            },
            mode: LoadMode::Stream,
        },
        Request::Audit {
            ds: ds(),
            max_key_size: 3,
        },
        Request::Key { ds: ds() },
        Request::Check {
            ds: ds(),
            attrs: vec!["zip".into(), "age".into()],
        },
        Request::Sketch {
            ds: ds(),
            attrs: vec!["sex".into()],
        },
        Request::Mask {
            ds: ds(),
            budget: 2,
        },
        Request::Stats { ds: ds() },
        Request::Batch {
            requests: vec![
                Request::Check {
                    ds: ds(),
                    attrs: vec!["zip".into()],
                },
                Request::Sketch {
                    ds: ds(),
                    attrs: vec!["zip".into()],
                },
                Request::Metrics,
            ],
        },
        Request::Unload { ds: ds() },
        Request::UnloadAll,
        Request::Trace {
            last: 20,
            command: Some("check".into()),
            min_us: 1_000,
        },
        Request::Trace {
            last: 50,
            command: None,
            min_us: 0,
        },
        Request::Metrics,
        Request::Shutdown,
    ];
    let params = sketch_params();
    let responses = vec![
        Response::Loaded {
            rows: 800,
            attrs: 4,
            sample: 40,
            cached: false,
        },
        Response::Audit {
            keys: vec![
                (vec!["id".into()], 1.0),
                (vec!["zip".into(), "age".into()], 0.5),
            ],
        },
        Response::Audit { keys: vec![] },
        Response::Key {
            attrs: vec!["id".into()],
            complete: true,
        },
        Response::Check {
            attrs: vec!["sex".into()],
            accept: false,
        },
        Response::Sketch {
            attrs: vec!["sex".into()],
            estimate: Some(159800.25),
            raw_pairs: 2051,
            sample_pairs: 4159,
            alpha: params.alpha,
            rel_error: params.eps,
            k: params.k,
        },
        Response::Sketch {
            attrs: vec!["id".into()],
            estimate: None,
            raw_pairs: 0,
            sample_pairs: 4159,
            alpha: params.alpha,
            rel_error: params.eps,
            k: params.k,
        },
        Response::Mask {
            suppressed: vec!["id".into()],
            residual_key_size: Some(3),
            full_data: true,
        },
        Response::Mask {
            suppressed: vec![],
            residual_key_size: None,
            full_data: false,
        },
        Response::Stats {
            rows: 800,
            exact: true,
            columns: vec![("id".into(), 800), ("sex".into(), 2)],
        },
        Response::Stats {
            rows: 800,
            exact: false,
            columns: vec![("id".into(), 793)],
        },
        Response::Batch {
            results: vec![
                Response::Check {
                    attrs: vec!["zip".into()],
                    accept: true,
                },
                Response::Error {
                    message: "unknown attribute \"nope\"".into(),
                },
            ],
        },
        Response::Unloaded { existed: true },
        Response::Metrics(MetricsReport {
            cache_hits: 4,
            cache_misses: 1,
            cache_disk_hits: 0,
            cache_evictions: 0,
            cache_stale_rebuilds: 0,
            cache_upgrades: 0,
            cache_append_updates: 2,
            cache_sweep_refreshes: 1,
            cache_bytes: 4144,
            datasets: 1,
            connections: 512,
            rejected_oversize: 3,
            rejected_rate: 17,
            rejected_busy: 9,
            writes_parked: 4,
            poller_connections: vec![130, 127],
            bytes_read: 4096,
            bytes_written: 9182,
            uptime_seconds: 3600,
            restarts: 2,
            wal_replayed_events: 41,
            version: "0.1.0".into(),
            commands: vec![CommandStats {
                name: "audit".into(),
                count: 2,
                errors: 0,
                latency_us: 467,
                p50_us: 255,
                p99_us: 511,
            }],
        }),
        Response::Trace {
            spans: vec![
                TraceSpan {
                    id: 9,
                    command: "check".into(),
                    outcome: "ok".into(),
                    key: "00c0ffee00c0ffee".into(),
                    queue_us: 42,
                    serve_us: 17,
                    write_us: 3,
                    bytes_in: 96,
                    bytes_out: 64,
                    age_ms: 1250,
                },
                TraceSpan {
                    id: 8,
                    command: "-".into(),
                    outcome: "protocol_error".into(),
                    key: String::new(),
                    queue_us: 0,
                    serve_us: 5,
                    write_us: 0,
                    bytes_in: 12,
                    bytes_out: 80,
                    age_ms: 2000,
                },
            ],
        },
        Response::Trace { spans: vec![] },
        Response::ShuttingDown,
        Response::LineTooLong { limit: 262_144 },
        Response::RateLimited { max_rps: 50 },
        Response::TooBusy { max_conns: 10_000 },
        Response::Error {
            message: "reading /data/people.csv: no such file".into(),
        },
    ];
    requests
        .iter()
        .map(Request::encode)
        .chain(responses.iter().map(Response::encode))
        .collect()
}

/// Where mismatch artifacts go (uploaded by CI on failure).
fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/proto-conformance");
    std::fs::create_dir_all(&dir).expect("artifact dir");
    dir
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/proto_conformance.ndjson")
}

#[test]
fn golden_corpus_matches_the_current_encoder() {
    let expected = corpus().join("\n") + "\n";
    if std::env::var_os("QID_REGEN_GOLDEN").is_some() {
        std::fs::write(golden_path(), &expected).expect("regenerate golden");
        return;
    }
    if GOLDEN != expected {
        let dir = artifact_dir();
        std::fs::write(dir.join("expected.ndjson"), &expected).unwrap();
        std::fs::write(dir.join("committed.ndjson"), GOLDEN).unwrap();
        panic!(
            "wire encoding drifted from tests/golden/proto_conformance.ndjson \
             (diff artifacts in {}; regenerate deliberately with \
             QID_REGEN_GOLDEN=1 cargo test --test proto_conformance)",
            dir.display()
        );
    }
}

#[test]
fn every_golden_line_roundtrips_byte_exactly() {
    let mut seen_cmds = std::collections::BTreeSet::new();
    let mut seen_kinds = std::collections::BTreeSet::new();
    let mut failures = Vec::new();
    for (i, line) in GOLDEN.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("golden line {i} unparseable: {e}"));
        let reencoded = if v.get("cmd").is_some() {
            let request = Request::decode(line).unwrap_or_else(|e| panic!("golden line {i}: {e}"));
            seen_cmds.insert(request.command_name().to_string());
            if let Request::Batch { requests } = &request {
                for sub in requests {
                    seen_cmds.insert(sub.command_name().to_string());
                }
            }
            request.encode()
        } else {
            let response =
                Response::decode(line).unwrap_or_else(|e| panic!("golden line {i}: {e}"));
            collect_kinds(&response, &mut seen_kinds);
            response.encode()
        };
        if reencoded != line {
            failures.push(format!(
                "line {i}:\n  golden: {line}\n  actual: {reencoded}"
            ));
        }
    }
    if !failures.is_empty() {
        let dir = artifact_dir();
        std::fs::write(dir.join("roundtrip-failures.txt"), failures.join("\n\n")).unwrap();
        panic!(
            "{} golden line(s) did not round-trip byte-exactly (see {})",
            failures.len(),
            dir.display()
        );
    }
    // The corpus must exercise every command and every response kind —
    // a new variant without a golden line fails here.
    let all_cmds: std::collections::BTreeSet<String> =
        COMMAND_NAMES.iter().map(|s| s.to_string()).collect();
    assert_eq!(seen_cmds, all_cmds, "golden corpus misses request commands");
    let all_kinds: std::collections::BTreeSet<String> =
        RESPONSE_KINDS.iter().map(|s| s.to_string()).collect();
    assert_eq!(seen_kinds, all_kinds, "golden corpus misses response kinds");
}

fn collect_kinds(response: &Response, kinds: &mut std::collections::BTreeSet<String>) {
    let kind = match response {
        Response::Loaded { .. } => "loaded",
        Response::Audit { .. } => "audit",
        Response::Key { .. } => "key",
        Response::Check { .. } => "check",
        Response::Sketch { .. } => "sketch",
        Response::Mask { .. } => "mask",
        Response::Stats { .. } => "stats",
        Response::Batch { results } => {
            for sub in results {
                collect_kinds(sub, kinds);
            }
            "batch"
        }
        Response::Unloaded { .. } => "unloaded",
        Response::Metrics(_) => "metrics",
        Response::Trace { .. } => "trace",
        Response::ShuttingDown => "bye",
        Response::LineTooLong { .. } => "line_too_long",
        Response::RateLimited { .. } => "rate_limited",
        Response::TooBusy { .. } => "too_busy",
        Response::Error { .. } => "error",
    };
    kinds.insert(kind.to_string());
}

// ---------------------------------------------------------- fuzz layer

/// One shared in-process server for the whole fuzz run (leaked for the
/// process lifetime — the OS reaps it).
fn fuzz_server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServerConfig::default()
        })
        .expect("bind fuzz server");
        let addr = server.local_addr();
        std::mem::forget(server.spawn());
        addr
    })
}

/// Truncates at a byte offset, snapped down to a char boundary.
fn truncate_at(s: &str, mut i: usize) -> String {
    while !s.is_char_boundary(i) {
        i -= 1;
    }
    s[..i.max(1)].to_string()
}

/// Lines that must never panic the server, drop the connection, or go
/// unanswered: broken JSON, wrong field types, unknown commands, huge
/// or non-integer numbers, forbidden compositions, and parser-hostile
/// nesting. (Lines that *decode* fine but name a missing file are also
/// included — they exercise the handler's error path.)
fn hostile_line() -> impl Strategy<Value = String> {
    // A valid request over a unicode path, truncated mid-line: always
    // unbalanced JSON.
    let base = Request::Audit {
        ds: DatasetRef {
            path: "/definitely/missing/données 😀.csv".into(),
            eps: 0.01,
            seed: 7,
        },
        max_key_size: 3,
    }
    .encode();
    let len = base.len();
    prop_oneof![
        (1usize..len).prop_map(move |i| truncate_at(&base, i)),
        Just("not json at all".to_string()),
        Just("{}".to_string()),
        Just(r#"{"cmd":123}"#.to_string()),
        Just(r#"{"cmd":["audit"]}"#.to_string()),
        Just(r#"{"cmd":"explode"}"#.to_string()),
        Just(r#"{"cmd":"audit","path":123}"#.to_string()),
        Just(r#"{"cmd":"audit","path":["x.csv"]}"#.to_string()),
        Just(r#"{"cmd":"key","path":"/missing.csv","seed":"not a number"}"#.to_string()),
        Just(r#"{"cmd":"key","path":"/missing.csv","seed":-1}"#.to_string()),
        Just(r#"{"cmd":"key","path":"/missing.csv","seed":1e300}"#.to_string()),
        Just(r#"{"cmd":"key","path":"/missing.csv","eps":"0.01"}"#.to_string()),
        Just(r#"{"cmd":"audit","path":"/missing.csv","eps":[0.1,0.2]}"#.to_string()),
        // Huge numbers: overflow i64, overflow usize semantics, or
        // decode fine and then fail on the missing file — either way a
        // structured error, never a panic.
        Just(
            r#"{"cmd":"audit","path":"/missing.csv","max_key_size":99999999999999999999999999}"#
                .to_string()
        ),
        Just(r#"{"cmd":"mask","path":"/missing.csv","budget":18446744073709551616}"#.to_string()),
        Just(r#"{"cmd":"check","path":"/missing.csv"}"#.to_string()),
        Just(r#"{"cmd":"sketch","path":"/missing.csv","attrs":[1,2]}"#.to_string()),
        Just(r#"{"cmd":"load","path":"/missing.csv","mode":"warp"}"#.to_string()),
        Just(r#"{"cmd":"batch"}"#.to_string()),
        Just(r#"{"cmd":"batch","requests":[{"cmd":"shutdown"}]}"#.to_string()),
        Just(r#"{"cmd":"batch","requests":[{"cmd":"batch","requests":[]}]}"#.to_string()),
        // Parser-hostile: deep nesting must be a depth error, not a
        // worker-stack overflow (which would abort the process).
        Just("[".repeat(50_000)),
        Just(format!("{}1{}", "[".repeat(200), "]".repeat(200))),
        (0u64..u64::MAX).prop_map(|n| format!("{{\"cmd\":\"cmd-{n}\"}}")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every hostile line gets exactly one structured error reply, and
    /// the same connection still answers a valid request afterwards.
    #[test]
    fn hostile_lines_get_structured_errors_not_disconnects(line in hostile_line()) {
        let stream = TcpStream::connect(fuzz_server_addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;

        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("server must answer");
        prop_assert!(!reply.is_empty(), "server dropped the connection on: {line:?}");
        let v = json::parse(reply.trim()).expect("reply must be valid JSON");
        prop_assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
        prop_assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("error"));
        prop_assert!(
            v.get("error").and_then(|e| e.as_str()).is_some_and(|m| !m.is_empty()),
            "error replies carry a message"
        );

        // The connection survives: a valid request still answers.
        writer.write_all(b"{\"cmd\":\"metrics\"}\n").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("connection stays usable");
        let v = json::parse(reply.trim()).expect("metrics reply parses");
        prop_assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));
    }
}

// ------------------------------------------- line-cap straddling layer

/// The request-line byte cap of the dedicated capped fuzz server.
const FUZZ_CAP: usize = 1024;

/// One shared in-process server with a small `--max-line-bytes` cap,
/// for fuzzing lines that straddle it.
fn capped_server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_line_bytes: FUZZ_CAP,
            ..ServerConfig::default()
        })
        .expect("bind capped fuzz server");
        let addr = server.local_addr();
        std::mem::forget(server.spawn());
        addr
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lines straddling `--max-line-bytes` — cap−1, cap, cap+1, 10×cap
    /// and lengths in between — are either served (≤ cap) or rejected
    /// with a structured `line_too_long` (> cap), and the connection
    /// survives every rejection. The line is a valid `metrics` request
    /// padded with trailing spaces, so the ≤ cap side proves the cap
    /// admits exactly up to its limit and the > cap side proves the
    /// rejection is the *only* thing that changed.
    #[test]
    fn lines_straddling_the_cap_reject_cleanly_and_survive(
        len in prop_oneof![
            Just(FUZZ_CAP - 1),
            Just(FUZZ_CAP),
            Just(FUZZ_CAP + 1),
            Just(10 * FUZZ_CAP),
            17usize..FUZZ_CAP,
            FUZZ_CAP + 1..4 * FUZZ_CAP,
        ]
    ) {
        let stream = TcpStream::connect(capped_server_addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;

        let mut line = br#"{"cmd":"metrics"}"#.to_vec();
        assert!(len >= line.len(), "padding target below the base request");
        line.resize(len, b' ');
        writer.write_all(&line).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();

        let mut reply = String::new();
        reader.read_line(&mut reply).expect("server must answer");
        prop_assert!(!reply.is_empty(), "connection dropped at len {len}");
        let v = json::parse(reply.trim()).expect("reply is valid JSON");
        if len <= FUZZ_CAP {
            prop_assert_eq!(
                v.get("kind").and_then(|k| k.as_str()),
                Some("metrics"),
                "a line of {} bytes is within the {}-byte cap", len, FUZZ_CAP
            );
        } else {
            prop_assert_eq!(
                v.get("ok").and_then(|b| b.as_bool()),
                Some(false)
            );
            prop_assert_eq!(
                v.get("kind").and_then(|k| k.as_str()),
                Some("line_too_long"),
                "a line of {} bytes crosses the {}-byte cap", len, FUZZ_CAP
            );
            prop_assert_eq!(
                v.get("limit").and_then(|l| l.as_u64()),
                Some(FUZZ_CAP as u64),
                "the rejection quotes the cap"
            );
        }

        // The connection survives either way: an unpadded request on
        // the same socket still answers.
        writer.write_all(b"{\"cmd\":\"metrics\"}\n").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("connection stays usable");
        let v = json::parse(reply.trim()).expect("follow-up reply parses");
        prop_assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));
    }
}

#[test]
fn invalid_utf8_is_answered_not_fatal() {
    let stream = TcpStream::connect(fuzz_server_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer
        .write_all(b"\xff\xfe{\"cmd\":\"metrics\"}\n")
        .unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("server answers");
    assert!(reply.contains(r#""ok":false"#), "{reply}");
    assert!(reply.contains("UTF-8"), "{reply}");
}
