//! Prometheus exposition conformance.
//!
//! Three layers:
//!
//! 1. **Format lint** — every non-comment line of a `/metrics` scrape
//!    must parse as `name{labels} value` (text format 0.0.4): metric
//!    names match `[a-zA-Z_:][a-zA-Z0-9_:]*`, label values are quoted,
//!    values parse as finite floats (or `+Inf`), and every sample's
//!    family carries `# HELP` and `# TYPE` headers.
//! 2. **Histogram invariants** — per-command latency buckets are
//!    cumulative (non-decreasing in `le`), the `+Inf` bucket equals
//!    `_count`, and `_sum` is non-negative.
//! 3. **Same-session consistency** — after real traffic, the scraped
//!    counters agree with the JSON `metrics` response for quiesced
//!    commands, and the required metric families are all present.
//!
//! The scrape goes over a real TCP connection with a hand-rolled HTTP
//! GET — the same path `curl` (and a Prometheus server) takes.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use quasi_id::server::proto::{DatasetRef, Request, Response};
use quasi_id::server::{Client, RunningServer, Server, ServerConfig};

/// Metric families the scrape must always export (CI greps for these
/// too; keep `.github/workflows/ci.yml` in sync).
const REQUIRED_FAMILIES: [&str; 19] = [
    "qid_build_info",
    "qid_uptime_seconds",
    "qid_requests_total",
    "qid_request_errors_total",
    "qid_request_latency_seconds",
    "qid_connections_accepted_total",
    "qid_worker_queue_depth",
    "qid_poller_registered_fds",
    "qid_cache_resident_bytes",
    "qid_cache_entries",
    "qid_cache_append_updates_total",
    "qid_cache_sweep_refreshes_total",
    "qid_restarts_total",
    "qid_wal_replayed_events_total",
    "qid_connections",
    "qid_rejected_lines_total",
    "qid_rejected_busy_total",
    "qid_writes_parked_total",
    "qid_poller_connections",
];

/// One parsed sample line: metric name, sorted labels, value.
#[derive(Debug, Clone, PartialEq)]
struct Sample {
    name: String,
    labels: BTreeMap<String, String>,
    value: f64,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses one exposition line (`name{k="v",...} value`), returning an
/// error string that names what broke — the lint test surfaces it.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_and_labels, value_text) = match line.find('}') {
        Some(close) => {
            let (head, tail) = line.split_at(close + 1);
            (head, tail.trim())
        }
        None => {
            let mut parts = line.splitn(2, ' ');
            let name = parts.next().unwrap_or("");
            (name, parts.next().unwrap_or("").trim())
        }
    };
    let (name, labels_text) = match name_and_labels.find('{') {
        Some(open) => {
            if !name_and_labels.ends_with('}') {
                return Err(format!("unterminated label set: {line:?}"));
            }
            (
                &name_and_labels[..open],
                &name_and_labels[open + 1..name_and_labels.len() - 1],
            )
        }
        None => (name_and_labels, ""),
    };
    if !valid_name(name) {
        return Err(format!("invalid metric name {name:?} in {line:?}"));
    }
    let mut labels = BTreeMap::new();
    if !labels_text.is_empty() {
        for pair in labels_text.split(',') {
            let (key, quoted) = pair
                .split_once('=')
                .ok_or_else(|| format!("label without '=' in {line:?}"))?;
            if !valid_name(key) {
                return Err(format!("invalid label name {key:?} in {line:?}"));
            }
            let value = quoted
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("unquoted label value in {line:?}"))?;
            if value.contains(['"', '\\', '\n']) {
                return Err(format!("unescaped label value in {line:?}"));
            }
            labels.insert(key.to_string(), value.to_string());
        }
    }
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        other => other
            .parse::<f64>()
            .map_err(|_| format!("unparseable value {other:?} in {line:?}"))?,
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parses a whole exposition body, checking HELP/TYPE coverage.
fn parse_exposition(body: &str) -> Vec<Sample> {
    let mut samples = Vec::new();
    let mut typed: BTreeSet<String> = BTreeSet::new();
    let mut helped: BTreeSet<String> = BTreeSet::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE names a metric");
            let kind = parts.next().expect("TYPE carries a kind");
            assert!(
                matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ),
                "unknown TYPE kind {kind:?}"
            );
            typed.insert(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP names a metric");
            helped.insert(name.to_string());
            continue;
        }
        assert!(
            !line.starts_with('#'),
            "comment line that is neither HELP nor TYPE: {line:?}"
        );
        samples.push(parse_sample(line).unwrap_or_else(|e| panic!("{e}")));
    }
    for sample in &samples {
        // Histogram series drop the _bucket/_sum/_count suffix to find
        // their family name.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                sample
                    .name
                    .strip_suffix(suffix)
                    .filter(|family| typed.contains(*family))
            })
            .unwrap_or(&sample.name)
            .to_string();
        assert!(typed.contains(&family), "{family} has no # TYPE");
        assert!(helped.contains(&family), "{family} has no # HELP");
    }
    samples
}

/// Scrapes `path` from the server's metrics listener over plain HTTP,
/// returning (status line, body).
fn scrape(server: &RunningServer, path: &str) -> (String, String) {
    let addr = server
        .state()
        .metrics_local_addr()
        .expect("server was bound with --metrics-addr");
    let mut stream = TcpStream::connect(addr).expect("connect to metrics listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: qid\r\n\r\n").unwrap();
    stream.flush().unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read full response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "exposition content type missing: {head}"
    );
    (status, body.to_string())
}

fn bind_with_metrics() -> RunningServer {
    Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .expect("bind")
    .spawn()
}

fn fixture_csv(name: &str) -> String {
    let dir = std::env::temp_dir().join("qid-prometheus-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut csv = String::from("zip,age,sex\n");
    for i in 0..400 {
        csv.push_str(&format!("{:05},{},{}\n", i % 83, 18 + i % 50, i % 2));
    }
    std::fs::write(&path, csv).unwrap();
    path.to_str().unwrap().to_string()
}

#[test]
fn scrape_is_lint_clean_and_consistent_with_json_metrics() {
    let server = bind_with_metrics();
    let path = fixture_csv("scrape.csv");
    let ds = DatasetRef {
        path,
        eps: 0.01,
        seed: 7,
    };

    // Real traffic first, so the counters and histograms are non-zero:
    // one load, a burst of checks, one deliberate error.
    let mut client = Client::connect(server.addr()).expect("connect");
    let loaded = client
        .call(&Request::Load {
            ds: ds.clone(),
            mode: quasi_id::server::LoadMode::Stream,
        })
        .expect("load");
    assert!(matches!(loaded, Response::Loaded { .. }), "{loaded:?}");
    for _ in 0..25 {
        let checked = client
            .call(&Request::Check {
                ds: ds.clone(),
                attrs: vec!["zip".into(), "age".into()],
            })
            .expect("check");
        assert!(matches!(checked, Response::Check { .. }), "{checked:?}");
    }
    let error = client
        .call(&Request::Check {
            ds: ds.clone(),
            attrs: vec!["no-such-column".into()],
        })
        .expect("check transport");
    assert!(matches!(error, Response::Error { .. }), "{error:?}");

    // JSON metrics *before* the scrape: the scrape itself touches no
    // command counters, so quiesced commands must agree exactly.
    let report = match client.call(&Request::Metrics).expect("metrics") {
        Response::Metrics(report) => report,
        other => panic!("expected metrics, got {other:?}"),
    };

    let (status, body) = scrape(&server, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK", "scrape status");
    let samples = parse_exposition(&body);
    assert!(!samples.is_empty(), "scrape produced no samples");

    // Every required family is present.
    let names: BTreeSet<&str> = samples.iter().map(|s| s.name.as_str()).collect();
    for family in REQUIRED_FAMILIES {
        assert!(
            names.contains(family)
                || names.contains(format!("{family}_bucket").as_str())
                || names.contains(format!("{family}_count").as_str()),
            "required family {family} missing from the scrape"
        );
    }

    // Histogram invariants, per command series.
    let mut by_command: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    let mut sums: BTreeMap<String, f64> = BTreeMap::new();
    for sample in &samples {
        let command = sample.labels.get("command").cloned().unwrap_or_default();
        match sample.name.as_str() {
            "qid_request_latency_seconds_bucket" => {
                let le = match sample.labels.get("le").map(String::as_str) {
                    Some("+Inf") => f64::INFINITY,
                    Some(edge) => edge.parse().expect("finite le edge parses"),
                    None => panic!("bucket without le label"),
                };
                by_command
                    .entry(command)
                    .or_default()
                    .push((le, sample.value));
            }
            "qid_request_latency_seconds_count" => {
                counts.insert(command, sample.value);
            }
            "qid_request_latency_seconds_sum" => {
                sums.insert(command, sample.value);
            }
            _ => {}
        }
    }
    assert!(!by_command.is_empty(), "no latency buckets exported");
    for (command, buckets) in &by_command {
        let edges: Vec<f64> = buckets.iter().map(|&(le, _)| le).collect();
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "{command}: le edges not strictly increasing: {edges:?}"
        );
        assert_eq!(
            edges.last().copied(),
            Some(f64::INFINITY),
            "{command}: +Inf bucket missing"
        );
        let values: Vec<f64> = buckets.iter().map(|&(_, v)| v).collect();
        assert!(
            values.windows(2).all(|w| w[0] <= w[1]),
            "{command}: buckets not cumulative: {values:?}"
        );
        let count = counts
            .get(command)
            .unwrap_or_else(|| panic!("{command}: _count missing"));
        assert_eq!(
            values.last().copied(),
            Some(*count),
            "{command}: +Inf bucket must equal _count"
        );
        let sum = sums
            .get(command)
            .unwrap_or_else(|| panic!("{command}: _sum missing"));
        assert!(*sum >= 0.0, "{command}: negative _sum");
    }

    // Same-session consistency with the JSON report: `load` and
    // `check` are quiesced (nothing ran them since), so the scraped
    // counters must match exactly; `metrics` ran once more than the
    // JSON report saw at most (the report request itself is counted
    // before the response is built, so it is exact too).
    let scraped_count = |command: &str| -> f64 {
        samples
            .iter()
            .find(|s| {
                s.name == "qid_requests_total"
                    && s.labels.get("command").map(String::as_str) == Some(command)
            })
            .unwrap_or_else(|| panic!("qid_requests_total missing command {command}"))
            .value
    };
    for stats in &report.commands {
        if stats.name == "metrics" {
            continue; // racing our own scrape bookkeeping is fine
        }
        assert_eq!(
            scraped_count(&stats.name),
            stats.count as f64,
            "scraped qid_requests_total{{command={}}} disagrees with JSON metrics",
            stats.name
        );
    }
    let check_errors = samples
        .iter()
        .find(|s| {
            s.name == "qid_request_errors_total"
                && s.labels.get("command").map(String::as_str) == Some("check")
        })
        .expect("check error counter")
        .value;
    assert_eq!(check_errors, 1.0, "the one bad check is an error sample");

    // Gauges reflect reality: one resident entry, bytes > 0, build
    // info pinned to the crate version.
    let gauge = |name: &str| -> f64 {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .value
    };
    assert_eq!(gauge("qid_cache_entries"), 1.0);
    assert!(gauge("qid_cache_resident_bytes") > 0.0);

    // One `qid_poller_connections` sample per shard, labelled with its
    // shard index, agreeing with the JSON report — and the scraping
    // client itself is registered with *some* shard.
    let shard_gauges: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.name == "qid_poller_connections")
        .collect();
    assert_eq!(
        shard_gauges.len(),
        report.poller_connections.len(),
        "one per-shard gauge per poller"
    );
    for (shard, sample) in shard_gauges.iter().enumerate() {
        assert_eq!(
            sample.labels.get("poller").map(String::as_str),
            Some(shard.to_string().as_str()),
            "shard gauges are labelled in shard order"
        );
    }
    // The scraping client itself is registered with *some* shard. The
    // gauge is only refreshed when a poller loop re-admits connections,
    // and right after a response is written the protocol connection is
    // briefly owned by a worker instead — so a scrape can race that
    // window and read zero. Re-scrape until the poller catches up.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    loop {
        let registered: f64 = parse_exposition(&scrape(&server, "/metrics").1)
            .iter()
            .filter(|s| s.name == "qid_poller_connections")
            .map(|s| s.value)
            .sum();
        if registered >= 1.0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "the connected client must be registered with a shard"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let build = samples
        .iter()
        .find(|s| s.name == "qid_build_info")
        .expect("build info");
    assert_eq!(build.value, 1.0);
    assert_eq!(
        build.labels.get("version").map(String::as_str),
        Some(quasi_id::server::BUILD_VERSION)
    );
    assert_eq!(
        report.version,
        quasi_id::server::BUILD_VERSION,
        "JSON metrics and build info agree on the version"
    );

    // Unknown paths 404; the root page points at /metrics.
    let (status, _) = scrape(&server, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    let (status, body) = scrape(&server, "/");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("/metrics"), "{body:?}");

    // Graceful shutdown still works with the metrics thread running —
    // join() would hang forever if the exposition loop leaked.
    let bye = client.call(&Request::Shutdown).expect("shutdown");
    assert!(matches!(bye, Response::ShuttingDown), "{bye:?}");
    server.join().expect("clean drain");
}
