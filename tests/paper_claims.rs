//! The paper's headline claims, checked end-to-end through the façade.

use quasi_id::core::analysis::{best_two_value_profile, c3_example, NonCollision};
use quasi_id::core::sketch::gamma_for_guess;
use quasi_id::dataset::generator::{planted_clique, planted_clique_size, GridDataset};
use quasi_id::prelude::*;
use quasi_id::sampling::birthday::q_for_collision;

/// Theorem 1's headline: the new filter needs `√ε` times the MX sample,
/// i.e. quadratically fewer samples in `1/ε`.
#[test]
fn sample_size_improvement_ratio() {
    for &eps in &[0.01, 0.001, 0.0001] {
        let p = FilterParams::new(eps);
        for &m in &[14usize, 54, 388] {
            let ratio = p.pair_sample_size(m) as f64 / p.tuple_sample_size(m) as f64;
            let expect = 1.0 / eps.sqrt();
            assert!(
                (ratio / expect - 1.0).abs() < 0.02,
                "m={m}, eps={eps}: ratio {ratio} vs {expect}"
            );
        }
    }
}

/// The paper's Table 1 sample-size arithmetic at ε = 0.001.
#[test]
fn table1_sample_arithmetic() {
    let p = FilterParams::new(0.001);
    // Paper used m = 13 / 55 / 372 effective attributes.
    assert_eq!(p.pair_sample_size(13), 13_000);
    assert_eq!(p.pair_sample_size(55), 55_000);
    assert_eq!(p.pair_sample_size(372), 372_000);
    assert!((411..=412).contains(&p.tuple_sample_size(13)));
    assert!((1739..=1740).contains(&p.tuple_sample_size(55)));
    assert!((11764..=11765).contains(&p.tuple_sample_size(372)));
}

/// Appendix C.3's exact counter-example values.
#[test]
fn c3_counterexample_values() {
    let (f1, f2) = c3_example();
    assert!((f1 - 76_370_239.2578125).abs() < 1e-3);
    assert_eq!(f2, 173_116_515.0);
    assert!(f2 > f1);
}

/// Lemma 1: the optimum over `P` is attained in the two-value family,
/// and it dominates the paper's named profiles.
#[test]
fn lemma1_two_value_dominance() {
    use quasi_id::core::analysis::{equal_blocks_profile, tilde_profile};
    let (n, eps, r) = (40usize, 0.25f64, 10usize);
    let best = best_two_value_profile(n, eps, r);
    let f_eq = quasi_id::core::analysis::kkt::objective(&equal_blocks_profile(n, eps), r);
    let f_tilde = quasi_id::core::analysis::kkt::objective(&tilde_profile(n, eps), r);
    assert!(best.objective >= f_eq);
    assert!(best.objective >= f_tilde);
}

/// Lemma 2's engine: on any two-value worst-case profile, `Θ(m/√ε)`
/// draws collide with overwhelming probability. (The exhaustive
/// two-value search is `O(n³r)`, so this runs at a moderate profile
/// length; the collision claim itself is scale-free in `n`.)
#[test]
fn lemma2_collision_at_m_over_sqrt_eps() {
    let (n, eps) = (300usize, 0.04f64);
    let m = 10usize;
    let r = (m as f64 / eps.sqrt()) as usize; // 50 draws
    let worst = best_two_value_profile(n, eps, 12);
    let nc = NonCollision::new(&worst.profile);
    // At r = m/√ε (constant 1) the failure is already ~1e-3; Lemma 2's
    // constant (2√8·K) drives it below e^{−20m}. Check both the level
    // and the exponential decay in the constant.
    let p1 = nc.with_replacement(r);
    assert!(p1 < 0.01, "non-collision at r=m/√ε is {p1}");
    let p2 = nc.with_replacement(2 * r);
    assert!(p2 < 1e-6, "non-collision at r=2m/√ε is {p2}");
    assert!(
        p2 < p1 * p1,
        "decay must be at least quadratic in the constant"
    );
}

/// Lemma 3's construction: on `[q]^m` every singleton is bad, and the
/// birthday bound gives the √(q log(1/δ)) sample rule.
#[test]
fn lemma3_grid_properties() {
    let grid = GridDataset::new(50, 8);
    let frac = grid.singleton_unseparated_fraction();
    assert!(frac > 0.0199, "singletons must be ~1/q bad: {frac}");
    // Theorem 4's sample rule: q_for_collision(q, δ*) ≈ √(8·q·ln(1/δ*)).
    let q = q_for_collision(50, 0.01);
    let expect = (8.0 * 50.0 * (100.0f64).ln()).sqrt();
    assert!((q as f64) <= expect.ceil() + 1.0);
}

/// Lemma 4's construction: the planted coordinate is bad but needs two
/// clique hits to expose, and the clique has measure `√(2ε)`.
#[test]
fn lemma4_planted_structure() {
    let (n, m, eps) = (20_000usize, 6usize, 0.02f64);
    let ds = planted_clique(n, m, eps, 3);
    let oracle = ExactOracle::new(&ds);
    assert!(oracle.is_bad(&[AttrId::new(0)], eps));
    assert!(oracle.is_key(&[AttrId::new(1)]));
    let c = planted_clique_size(n, eps);
    assert!((c as f64 / n as f64 - (2.0 * eps).sqrt()).abs() < 0.001);
}

/// Lemma 6's exact Γ formula on the Section 3.2 hard instance, checked
/// against the real data set for a non-trivial parameterisation.
#[test]
fn lemma6_formula_on_dataset() {
    use quasi_id::core::separation::unseparated_pairs;
    use quasi_id::core::sketch::{index_matrix_dataset, random_index_matrix};
    let (m, k, t) = (4usize, 3usize, 4usize);
    let n = k * t;
    let c = random_index_matrix(m, k, t, 99);
    let ds = index_matrix_dataset(&c);
    #[allow(clippy::needless_range_loop)] // col doubles as the AttrId payload
    for col in 0..m {
        let ones: Vec<usize> = (0..n).filter(|&r| c[col][r]).collect();
        let attrs: Vec<AttrId> = std::iter::once(AttrId::new(col))
            .chain(ones.iter().map(|&r| AttrId::new(m + r)))
            .collect();
        assert_eq!(
            unseparated_pairs(&ds, &attrs),
            gamma_for_guess(k, t, k),
            "perfect guess on column {col}"
        );
    }
}

/// Theorem 1's soundness is *deterministic*: keys are always accepted,
/// by both filters, under any seed.
#[test]
fn keys_never_rejected() {
    let ds = quasi_id::dataset::generator::DatasetSpec::new(5_000)
        .column("id", quasi_id::dataset::generator::ColumnSpec::RowId)
        .column(
            "x",
            quasi_id::dataset::generator::ColumnSpec::Uniform { cardinality: 7 },
        )
        .generate(21)
        .unwrap();
    let key = vec![AttrId::new(0)];
    for seed in 0..25 {
        let t = TupleSampleFilter::build(&ds, FilterParams::new(0.001), seed);
        let p = PairSampleFilter::build(&ds, FilterParams::new(0.001), seed);
        assert_eq!(t.query(&key), FilterDecision::Accept);
        assert_eq!(p.query(&key), FilterDecision::Accept);
    }
}
