//! # quasi-id — finding quasi-identifiers with better sampling bounds
//!
//! A faithful, production-quality Rust implementation of
//! Hildebrant, Le, Ta and Vu, *"Towards Better Bounds for Finding
//! Quasi-Identifiers"* (PODS 2023, arXiv:2211.13882), including every
//! substrate the paper relies on.
//!
//! This crate is a façade over the workspace:
//!
//! * [`dataset`] — columnar data sets, CSV I/O, synthetic workload
//!   generators (including the paper's three evaluation shapes and both
//!   lower-bound constructions).
//! * [`sampling`] — uniform sampling substrate: without-replacement index
//!   sampling, reservoirs, pair (un)ranking, the birthday-problem
//!   calculators behind the paper's analysis.
//! * [`setcover`] — greedy and exact set cover, the reduction target of
//!   the minimum-key problem.
//! * [`core`] — the paper's contribution: ε-separation key filters
//!   (Motwani–Xu pair sampling vs. the improved `Θ(m/√ε)` tuple
//!   sampling), approximate minimum ε-separation keys via partition
//!   refinement, non-separation sketches, and the executable analysis
//!   machinery (symmetric polynomials, KKT worst cases).
//! * [`server`] — the resident audit service: a registry of cached
//!   sketches keyed by `(path, eps, seed)` behind a newline-delimited
//!   JSON protocol over TCP (`qid serve` / `qid query`), so the full
//!   scan happens once and every subsequent query is answered from the
//!   resident sample.
//!
//! ## Quickstart
//!
//! ```
//! use quasi_id::prelude::*;
//!
//! // A toy data set: four people, three attributes.
//! let mut b = DatasetBuilder::new(["zip", "age", "sex"]);
//! b.push_row([Value::Int(92101), Value::Int(33), Value::text("F")]).unwrap();
//! b.push_row([Value::Int(92101), Value::Int(33), Value::text("M")]).unwrap();
//! b.push_row([Value::Int(92102), Value::Int(41), Value::text("F")]).unwrap();
//! b.push_row([Value::Int(92103), Value::Int(41), Value::text("M")]).unwrap();
//! let ds = b.finish();
//!
//! // Exact ground truth: {zip, sex} separates every pair.
//! let oracle = ExactOracle::new(&ds);
//! let zip_sex = vec![AttrId::new(0), AttrId::new(2)];
//! assert!(oracle.is_key(&zip_sex));
//!
//! // The paper's improved filter agrees (and is sublinear in n).
//! let filter = TupleSampleFilter::build(&ds, FilterParams::new(0.1), 42);
//! assert_eq!(filter.query(&zip_sex), FilterDecision::Accept);
//! ```

pub use qid_core as core;
pub use qid_dataset as dataset;
pub use qid_sampling as sampling;
pub use qid_server as server;
pub use qid_setcover as setcover;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use qid_core::analysis::{NonCollision, WorstCaseProfile};
    pub use qid_core::filter::{
        FilterDecision, FilterParams, PairSampleFilter, SeparationFilter, TupleSampleFilter,
    };
    pub use qid_core::masking::{plan_masking, MaskingPlan};
    pub use qid_core::minkey::{GreedyRefineMinKey, MinKeyResult, MxGreedyMinKey};
    pub use qid_core::oracle::ExactOracle;
    pub use qid_core::separation::PartitionIndex;
    pub use qid_core::sketch::{DistinctSketch, NonSeparationSketch, SketchAnswer, SketchParams};
    pub use qid_dataset::generator::{adult_like, covtype_like, cps_like, BenchmarkSet};
    pub use qid_dataset::{AttrId, Dataset, DatasetBuilder, Schema, TupleSource, Value};
    pub use qid_server::{Client, DatasetRef, Request, Response, Server, ServerConfig};
}
