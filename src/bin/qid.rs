//! `qid` — command-line quasi-identifier analysis for CSV files.
//!
//! ```text
//! qid audit  data.csv [--eps 0.001] [--seed 7] [--max-key-size 4]
//! qid key    data.csv [--eps 0.001] [--seed 7] [--exact]
//! qid check  data.csv --attrs zip,age,sex [--eps 0.001] [--seed 7]
//! qid mask   data.csv [--eps 0.001] [--budget 2] [--seed 7]
//! qid stats  data.csv
//! ```
//!
//! All commands run on a `Θ(m/√ε)` tuple sample (the paper's
//! Algorithm 1 sampling), so they work at any data size.

use std::process::ExitCode;

use quasi_id::core::filter::SeparationFilter;
use quasi_id::core::masking::plan_masking;
use quasi_id::core::minkey::{
    enumerate_minimal_keys, exact_min_key_sampled, GreedyRefineMinKey, LatticeConfig,
};
use quasi_id::core::separation::group_sizes;
use quasi_id::dataset::csv::{read_csv_path, CsvOptions};
use quasi_id::prelude::*;

/// Parsed command-line options.
struct Opts {
    command: String,
    path: String,
    eps: f64,
    seed: u64,
    attrs: Option<String>,
    max_key_size: usize,
    budget: usize,
    exact: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: qid <audit|key|check|mask|stats> <data.csv> \
         [--eps E] [--seed S] [--attrs a,b,c] [--max-key-size K] \
         [--budget B] [--exact]"
    );
    std::process::exit(2);
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| usage());
    let path = args.next().unwrap_or_else(|| usage());
    let mut opts = Opts {
        command,
        path,
        eps: 0.001,
        seed: 7,
        attrs: None,
        max_key_size: 3,
        budget: 2,
        exact: false,
    };
    while let Some(flag) = args.next() {
        let mut take = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--eps" => opts.eps = take("--eps").parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = take("--seed").parse().unwrap_or_else(|_| usage()),
            "--attrs" => opts.attrs = Some(take("--attrs")),
            "--max-key-size" => {
                opts.max_key_size = take("--max-key-size").parse().unwrap_or_else(|_| usage())
            }
            "--budget" => opts.budget = take("--budget").parse().unwrap_or_else(|_| usage()),
            "--exact" => opts.exact = true,
            _ => {
                eprintln!("unknown flag {flag}");
                usage()
            }
        }
    }
    opts
}

fn resolve_attrs(ds: &Dataset, spec: &str) -> Result<Vec<AttrId>, String> {
    spec.split(',')
        .map(|name| {
            let name = name.trim();
            ds.schema()
                .attr_by_name(name)
                .or_else(|| {
                    name.parse::<usize>()
                        .ok()
                        .filter(|&i| i < ds.n_attrs())
                        .map(AttrId::new)
                })
                .ok_or_else(|| format!("unknown attribute {name:?}"))
        })
        .collect()
}

fn names(ds: &Dataset, attrs: &[AttrId]) -> Vec<String> {
    attrs
        .iter()
        .map(|&a| ds.schema().attr(a).name().to_string())
        .collect()
}

fn main() -> ExitCode {
    let opts = parse_args();
    let ds = match read_csv_path(&opts.path, &CsvOptions::default()) {
        Ok(ds) => ds,
        Err(e) => {
            eprintln!("error reading {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    if ds.n_rows() < 2 || ds.n_attrs() == 0 {
        eprintln!("data set too small to analyse ({:?})", ds);
        return ExitCode::FAILURE;
    }
    let params = FilterParams::new(opts.eps);
    println!(
        "{}: {} rows x {} attributes; eps = {}, sample = {} tuples",
        opts.path,
        ds.n_rows(),
        ds.n_attrs(),
        opts.eps,
        params.tuple_sample_size(ds.n_attrs()).min(ds.n_rows())
    );

    match opts.command.as_str() {
        "stats" => {
            println!("\nattribute cardinalities:");
            for a in 0..ds.n_attrs() {
                let attr = AttrId::new(a);
                let col = ds.column(attr);
                println!(
                    "  {:<24} {:>9} distinct ({:.2}% of rows)",
                    ds.schema().attr(attr).name(),
                    col.dict_size(),
                    100.0 * col.dict_size() as f64 / ds.n_rows() as f64
                );
            }
        }
        "check" => {
            let Some(spec) = &opts.attrs else {
                eprintln!("check requires --attrs");
                return ExitCode::FAILURE;
            };
            let attrs = match resolve_attrs(&ds, spec) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let filter = TupleSampleFilter::build(&ds, params, opts.seed);
            let decision = filter.query(&attrs);
            println!("\n{:?}: {decision:?}", names(&ds, &attrs));
            println!(
                "(Accept = separates all sampled pairs — candidate quasi-identifier;\n\
                  Reject = misses ≥ one sampled pair — not an eps-separation key)"
            );
        }
        "key" => {
            let result = if opts.exact {
                match exact_min_key_sampled(&ds, params, opts.seed) {
                    Some(attrs) => attrs,
                    None => {
                        println!("\nno key exists: the sample contains identical tuples");
                        return ExitCode::SUCCESS;
                    }
                }
            } else {
                let r = GreedyRefineMinKey::new(params).run(&ds, opts.seed);
                if !r.complete {
                    println!("\nno key exists: the sample contains identical tuples");
                    return ExitCode::SUCCESS;
                }
                r.attrs
            };
            println!(
                "\n{} eps-separation key ({} attributes): {:?}",
                if opts.exact {
                    "exact-on-sample"
                } else {
                    "greedy"
                },
                result.len(),
                names(&ds, &result)
            );
        }
        "audit" => {
            let filter = TupleSampleFilter::build(&ds, params, opts.seed);
            let sample = filter.sample().clone();
            let keys = enumerate_minimal_keys(
                &sample,
                LatticeConfig {
                    max_size: opts.max_key_size,
                    max_candidates: 500_000,
                },
            );
            println!(
                "\nminimal quasi-identifiers with ≤ {} attributes (on the sample):",
                opts.max_key_size
            );
            if keys.is_empty() {
                println!("  none — no small attribute set identifies the records");
            }
            for key in keys.iter().take(25) {
                let sizes = group_sizes(&ds, key);
                let unique = sizes.iter().filter(|&&s| s == 1).count();
                println!(
                    "  {:?} — {:.1}% of rows uniquely identified",
                    names(&ds, key),
                    100.0 * unique as f64 / ds.n_rows() as f64
                );
            }
            if keys.len() > 25 {
                println!("  … and {} more", keys.len() - 25);
            }
        }
        "mask" => {
            let plan = plan_masking(&ds, params, opts.budget, opts.seed);
            println!(
                "\nto defeat adversaries holding ≤ {} attributes, suppress:",
                opts.budget
            );
            if plan.suppressed.is_empty() {
                println!("  nothing — no quasi-identifier fits that budget");
            }
            for a in &plan.suppressed {
                println!("  {}", ds.schema().attr(*a).name());
            }
            match plan.residual_key_size {
                Some(s) => println!("released view: smallest residual key has {s} attributes"),
                None => println!("released view: no identifying attribute set remains"),
            }
        }
        other => {
            eprintln!("unknown command {other:?}");
            usage();
        }
    }
    ExitCode::SUCCESS
}
