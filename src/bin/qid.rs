//! `qid` — command-line quasi-identifier analysis for CSV files.
//!
//! One-shot analysis:
//!
//! ```text
//! qid audit  data.csv [--eps 0.001] [--seed 7] [--max-key-size 4]
//! qid key    data.csv [--eps 0.001] [--seed 7] [--exact]
//! qid check  data.csv --attrs zip,age,sex [--eps 0.001] [--seed 7]
//! qid mask   data.csv [--eps 0.001] [--budget 2] [--seed 7]
//! qid stats  data.csv
//! ```
//!
//! All commands run on a `Θ(m/√ε)` tuple sample (the paper's
//! Algorithm 1 sampling), so they work at any data size. `audit` and
//! `key` build that sample in one streaming pass (a size-`r`
//! reservoir), so their memory is `O(m/√ε)`, not `O(n·m)`; pass
//! `--exact` to materialise the file instead.
//!
//! Resident service (build the sample once, query it many times):
//!
//! ```text
//! qid serve [--addr 127.0.0.1:0] [--workers 4] [--pollers N]
//!           [--max-conns N] [--cache-bytes N[K|M|G]] [--cache-dir DIR]
//!           [--cache-disk-bytes N[K|M|G]]
//!           [--max-line-bytes N[K|M|G]] [--max-rps N]
//!           [--revalidate-ms MS] [--sweep-ms MS]
//!           [--metrics-addr HOST:PORT] [--slow-ms MS] [--log-json]
//!           [--wal-max-bytes N[K|M|G]]
//! qid wal   <cache-dir> [--verify] [--dump]
//! qid query <addr> load    data.csv [--eps E] [--seed S] [--stream]
//! qid query <addr> audit   data.csv [--eps E] [--seed S] [--max-key-size K]
//! qid query <addr> key     data.csv [--eps E] [--seed S]
//! qid query <addr> check   data.csv --attrs a,b [--eps E] [--seed S]
//! qid query <addr> sketch  data.csv --attrs a,b [--eps E] [--seed S]
//! qid query <addr> mask    data.csv [--eps E] [--seed S] [--budget B]
//! qid query <addr> stats   data.csv
//! qid query <addr> batch   -        # NDJSON sub-commands on stdin
//! qid query <addr> unload  data.csv [--eps E] [--seed S]
//! qid query <addr> unload  --all    # purge every cached entry + artifact
//! qid query <addr> trace   [--last N] [--command CMD] [--min-us N]
//! qid query <addr> metrics
//! qid query <addr> shutdown
//! ```
//!
//! Saturation load testing (see docs/BENCHMARKS.md for the handbook):
//!
//! ```text
//! qid bench <addr> <data.csv> [--connections N] [--duration-s S]
//!           [--warmup-s S] [--seed S] [--eps E]
//!           [--mode closed|open] [--rate RPS] [--check-only] [--json]
//! ```
//!
//! `bench` opens N concurrent connections against a running server,
//! drives a seeded synthetic request mix (check-heavy, plus stats /
//! sketch / audit / batch) for a time-boxed window, and reports
//! throughput with p50/p99/p999 latency. Closed loop (default) keeps
//! one request outstanding per connection; `--mode open --rate R`
//! sends on a fixed schedule and measures latency from the scheduled
//! send time. Exits non-zero on any transport error.
//!
//! `sketch` returns Theorem 2's Γ-estimate (unseparated-pair count)
//! for an attribute set, answered from a cached non-separation
//! sketch. `batch -` reads one JSON request object per stdin line,
//! sends them as a single `batch` wire line, and prints each result —
//! the server resolves each distinct dataset key once for the whole
//! batch. `--cache-bytes` caps the registry's resident memory (LRU
//! eviction); `--cache-dir` persists built samples so a restarted
//! server warms up without re-scanning sources; `--cache-disk-bytes`
//! caps that warm tier on disk (whole artifact groups evicted
//! oldest-first). `--sweep-ms` arms a background revalidation thread
//! that refreshes stale or appended sources ahead of traffic — with
//! it, an append-only CSV that grows between queries is absorbed
//! incrementally (only the new suffix is scanned) before the next
//! request arrives. See README "Cache lifecycle".
//!
//! With `--cache-dir` set the registry also keeps a write-ahead journal
//! of lifecycle events plus a periodic snapshot (`--wal-max-bytes`
//! bounds the journal, `0` disables it). A restarted server replays the
//! journal to resume its cumulative counters and eagerly re-admit the
//! previous resident set; a journal without a clean-shutdown record is
//! crash evidence that lets orphaned `*.tmp` build files be reclaimed
//! immediately. `qid wal <cache-dir>` prints the recovered state
//! (`--dump` shows raw records, `--verify` exits non-zero on
//! corruption). See docs/ARCHITECTURE.md "Durability".
//!
//! The server's connection core is readiness-driven (`epoll` on Linux,
//! `kqueue` on macOS/BSD, `poll(2)` fallback), sharded across
//! `--pollers` readiness threads (default: one per core, capped at 4):
//! idle keep-alive connections cost no worker time, so tens of
//! thousands of quiet clients can stay connected, and a stalled reader
//! only write-parks its own connection instead of pinning a worker.
//! Three knobs harden it against untrusted clients: `--max-conns` caps
//! concurrent connections (beyond it, accepts are answered with a
//! structured `too_busy` error and closed), `--max-line-bytes` caps
//! the request-line length (default 256K; longer lines get a
//! structured `line_too_long` error in O(cap) memory and the
//! connection survives) and `--max-rps` rate-limits each connection
//! with a token bucket (default off; over-budget lines get
//! `rate_limited` before they are decoded).
//!
//! Observability (see docs/ARCHITECTURE.md "Observability"): the
//! server records a trace span for every request into a fixed-size
//! ring, queryable live with `qid query <addr> trace`; `--metrics-addr`
//! serves Prometheus text-format metrics over plain HTTP GET
//! (`/metrics`); `--slow-ms` prints one NDJSON line on stderr per
//! request slower than the threshold; `--log-json` adds NDJSON cache
//! lifecycle events (build, restore, evict, stale-rebuild, unload,
//! purge) and rejection events.

use std::process::ExitCode;

use quasi_id::core::filter::SeparationFilter;
use quasi_id::core::masking::plan_masking;
use quasi_id::core::minkey::{
    enumerate_minimal_keys, exact_min_key_sampled, GreedyRefineMinKey, LatticeConfig,
};
use quasi_id::core::separation::group_sizes;
use quasi_id::core::stream::tuple_filter_from_stream;
use quasi_id::dataset::csv::{read_csv_path, CsvOptions, CsvTupleSource};
use quasi_id::prelude::*;
use quasi_id::server::proto::{DatasetRef, LoadMode, Request, Response, DEFAULT_TRACE_LAST};
use quasi_id::server::{resolve_attr_names, split_attr_spec, Client, Server, ServerConfig};

/// Prints one line to stdout, treating a closed pipe as a clean exit:
/// `qid … | head -1` must not panic with "Broken pipe" when the reader
/// stops early (Rust ignores SIGPIPE, so `println!` would). Any other
/// stdout write failure is a real error and exits non-zero.
macro_rules! outln {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        let mut out = std::io::stdout();
        if let Err(e) = writeln!(out, $($arg)*) {
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                std::process::exit(0);
            }
            eprintln!("error writing to stdout: {e}");
            std::process::exit(1);
        }
    }};
}

/// Parsed command-line options for the one-shot and `query` commands.
struct Opts {
    command: String,
    path: String,
    eps: f64,
    seed: u64,
    attrs: Option<String>,
    max_key_size: usize,
    budget: usize,
    exact: bool,
    stream: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: qid <audit|key|check|mask|stats> <data.csv> \
         [--eps E] [--seed S] [--attrs a,b,c] [--max-key-size K] \
         [--budget B] [--exact]\n\
         \x20      qid serve [--addr HOST:PORT] [--workers N] [--pollers N] \
         [--max-conns N] [--cache-bytes N[K|M|G]] [--cache-dir DIR] \
         [--cache-disk-bytes N[K|M|G]] [--max-line-bytes N[K|M|G]] \
         [--max-rps N] [--revalidate-ms MS] [--sweep-ms MS] \
         [--metrics-addr HOST:PORT] [--slow-ms MS] [--log-json] \
         [--wal-max-bytes N[K|M|G]]\n\
         \x20      qid query <addr> \
         <load|audit|key|check|sketch|mask|stats|batch|unload|trace|metrics|shutdown> \
         [data.csv | - | --all] [flags]\n\
         \x20      qid bench <addr> <data.csv> [--connections N] \
         [--duration-s S] [--warmup-s S] [--seed S] [--eps E] \
         [--mode closed|open] [--rate RPS] [--check-only] [--json]\n\
         \x20      qid wal <cache-dir> [--verify] [--dump]"
    );
    std::process::exit(2);
}

fn parse_opts(command: String, path: String, args: &[String]) -> Opts {
    let mut opts = Opts {
        command,
        path,
        eps: 0.001,
        seed: 7,
        attrs: None,
        max_key_size: 3,
        budget: 2,
        exact: false,
        stream: false,
    };
    let mut args = args.iter();
    while let Some(flag) = args.next() {
        let mut take = |name: &str| -> &String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--eps" => opts.eps = take("--eps").parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = take("--seed").parse().unwrap_or_else(|_| usage()),
            "--attrs" => opts.attrs = Some(take("--attrs").clone()),
            "--max-key-size" => {
                opts.max_key_size = take("--max-key-size").parse().unwrap_or_else(|_| usage())
            }
            "--budget" => opts.budget = take("--budget").parse().unwrap_or_else(|_| usage()),
            "--exact" => opts.exact = true,
            "--stream" => opts.stream = true,
            _ => {
                eprintln!("unknown flag {flag}");
                usage()
            }
        }
    }
    opts
}

/// Resolves a comma-separated attribute spec against a dataset,
/// dropping duplicates (first occurrence wins) with a warning: a
/// repeated attribute adds no separation power but silently inflates
/// the apparent key size.
fn resolve_attrs(ds: &Dataset, spec: &str) -> Result<Vec<AttrId>, String> {
    let resolved = resolve_attr_names(ds.schema(), ds.n_attrs(), &split_attr_spec(spec))?;
    for dup in &resolved.duplicates {
        eprintln!("warning: duplicate attribute {dup:?} ignored");
    }
    Ok(resolved.attrs)
}

fn names(ds: &Dataset, attrs: &[AttrId]) -> Vec<String> {
    attrs
        .iter()
        .map(|&a| ds.schema().attr(a).name().to_string())
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        usage()
    };
    match command.as_str() {
        "serve" => cmd_serve(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "wal" => cmd_wal(&args[1..]),
        _ => {
            let Some(path) = args.get(1).cloned() else {
                usage()
            };
            cmd_oneshot(parse_opts(command, path, &args[2..]))
        }
    }
}

// ---------------------------------------------------------------- serve

/// Parses a byte count with an optional `K`/`M`/`G` suffix
/// (case-insensitive, powers of 1024): `"64M"` → 67108864. Overflow is
/// an error, not a silent wrap.
fn parse_bytes(text: &str) -> Option<u64> {
    let text = text.trim();
    let (digits, shift) = match text.as_bytes().last()? {
        b'k' | b'K' => (&text[..text.len() - 1], 10),
        b'm' | b'M' => (&text[..text.len() - 1], 20),
        b'g' | b'G' => (&text[..text.len() - 1], 30),
        _ => (text, 0),
    };
    digits.parse::<u64>().ok()?.checked_mul(1u64 << shift)
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut config = ServerConfig::default();
    let mut args = args.iter();
    while let Some(flag) = args.next() {
        let mut take = |name: &str| -> &String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = take("--addr").clone(),
            "--workers" => config.workers = take("--workers").parse().unwrap_or_else(|_| usage()),
            "--pollers" => {
                let pollers: usize = take("--pollers").parse().unwrap_or_else(|_| {
                    eprintln!("--pollers wants a positive shard count");
                    usage()
                });
                if pollers == 0 {
                    eprintln!("--pollers must be >= 1");
                    usage()
                }
                config.pollers = pollers;
            }
            "--max-conns" => {
                config.max_conns = take("--max-conns").parse().unwrap_or_else(|_| {
                    eprintln!("--max-conns wants a connection cap (0 disables)");
                    usage()
                });
            }
            "--cache-bytes" => {
                config.cache_bytes = Some(parse_bytes(take("--cache-bytes")).unwrap_or_else(|| {
                    eprintln!("--cache-bytes wants an integer with an optional K/M/G suffix");
                    usage()
                }))
            }
            "--cache-dir" => config.cache_dir = Some(take("--cache-dir").clone()),
            "--cache-disk-bytes" => {
                config.cache_disk_bytes =
                    Some(parse_bytes(take("--cache-disk-bytes")).unwrap_or_else(|| {
                        eprintln!(
                            "--cache-disk-bytes wants an integer with an optional K/M/G suffix"
                        );
                        usage()
                    }))
            }
            "--max-line-bytes" => {
                let bytes = parse_bytes(take("--max-line-bytes")).unwrap_or_else(|| {
                    eprintln!("--max-line-bytes wants an integer with an optional K/M/G suffix");
                    usage()
                });
                if bytes == 0 || bytes > usize::MAX as u64 {
                    eprintln!("--max-line-bytes must be between 1 and usize::MAX");
                    usage()
                }
                config.max_line_bytes = bytes as usize;
            }
            "--max-rps" => {
                let rps: u32 = take("--max-rps").parse().unwrap_or_else(|_| {
                    eprintln!("--max-rps wants a non-negative integer (0 disables)");
                    usage()
                });
                // 0 keeps the default (unlimited) explicit.
                config.max_rps = (rps > 0).then_some(rps);
            }
            "--revalidate-ms" => {
                config.revalidate_ms = take("--revalidate-ms").parse().unwrap_or_else(|_| {
                    eprintln!(
                        "--revalidate-ms wants a window in milliseconds \
                         (0 restores stat-per-request freshness checks)"
                    );
                    usage()
                });
            }
            "--sweep-ms" => {
                config.sweep_ms = take("--sweep-ms").parse().unwrap_or_else(|_| {
                    eprintln!(
                        "--sweep-ms wants a background revalidation interval \
                         in milliseconds (0 disables the sweeper)"
                    );
                    usage()
                });
            }
            "--metrics-addr" => config.metrics_addr = Some(take("--metrics-addr").clone()),
            "--slow-ms" => {
                config.slow_ms = Some(take("--slow-ms").parse().unwrap_or_else(|_| {
                    eprintln!("--slow-ms wants a threshold in milliseconds");
                    usage()
                }));
            }
            "--log-json" => config.log_json = true,
            "--wal-max-bytes" => {
                config.wal_max_bytes = parse_bytes(take("--wal-max-bytes")).unwrap_or_else(|| {
                    eprintln!(
                        "--wal-max-bytes wants an integer with an optional \
                             K/M/G suffix (0 disables the registry journal)"
                    );
                    usage()
                })
            }
            _ => {
                eprintln!("unknown flag {flag}");
                usage()
            }
        }
    }
    let server = match Server::bind(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error binding {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    // The test harness (and shell scripts) parse this line for the
    // resolved ephemeral port; flush so they see it immediately. Writes
    // go through `write!` with errors ignored: the supervising process
    // may close its end of the pipe once it has the address.
    use std::io::Write as _;
    let mut stdout = std::io::stdout();
    let _ = writeln!(
        stdout,
        "qid-server listening on {} (workers = {}, pollers = {}, poller = {}, \
         max-conns = {}, max-line-bytes = {}, max-rps = {}, revalidate-ms = {}, \
         sweep-ms = {}, metrics = {})",
        server.local_addr(),
        config.workers.max(1),
        config.pollers.max(1),
        quasi_id::server::backend_name(),
        if config.max_conns == 0 {
            "off".to_string()
        } else {
            config.max_conns.to_string()
        },
        config.max_line_bytes,
        config
            .max_rps
            .map_or("off".to_string(), |rps| rps.to_string()),
        config.revalidate_ms,
        if config.sweep_ms == 0 {
            "off".to_string()
        } else {
            config.sweep_ms.to_string()
        },
        server
            .state()
            .metrics_local_addr()
            .map_or("off".to_string(), |addr| addr.to_string())
    );
    let _ = stdout.flush();
    match server.serve() {
        Ok(()) => {
            let _ = writeln!(stdout, "qid-server drained, shutting down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("server error: {e}");
            ExitCode::FAILURE
        }
    }
}

// ------------------------------------------------------------------ wal

/// `qid wal <cache-dir> [--verify] [--dump]` — offline forensics on a
/// cache directory's registry journal. The summary answers "what would
/// the next boot recover"; `--dump` prints the raw records; `--verify`
/// exits non-zero iff the journal is internally inconsistent (a
/// crash-torn tail is expected wear, not corruption).
fn cmd_wal(args: &[String]) -> ExitCode {
    let mut dir: Option<&str> = None;
    let mut verify = false;
    let mut dump = false;
    for arg in args {
        match arg.as_str() {
            "--verify" => verify = true,
            "--dump" => dump = true,
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag for qid wal: {flag}");
                usage()
            }
            path if dir.is_none() => dir = Some(path),
            extra => {
                eprintln!("unexpected argument: {extra}");
                usage()
            }
        }
    }
    let Some(dir) = dir else { usage() };
    let report = quasi_id::server::wal::inspect(std::path::Path::new(dir));
    if !report.had_journal {
        outln!("{dir}: no registry journal (server never ran with a WAL here)");
        return if verify && !report.issues.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    match report.snapshot_seq {
        Some(seq) => outln!("snapshot: through seq {seq}, {} keys", report.snapshot_keys),
        None => outln!("snapshot: none (journal has not rotated yet)"),
    }
    outln!(
        "journal: {} records, seq {}..={}, {} prior lives",
        report.events,
        report.first_seq,
        report.last_seq,
        report.restarts
    );
    outln!(
        "shutdown: {}{}",
        if report.clean_shutdown {
            "clean (shutdown record present)"
        } else {
            "unclean — crash evidence; tmp orphans reclaimable immediately"
        },
        if report.torn_tail {
            "; torn final record (killed mid-write)"
        } else {
            ""
        }
    );
    outln!(
        "resident: {} keys would be re-admitted on the next boot",
        report.resident
    );
    let c = &report.counters;
    outln!(
        "counters: {} hits, {} misses, {} disk hits, {} evictions, \
         {} stale rebuilds, {} upgrades, {} append updates, {} sweep refreshes",
        c.hits,
        c.misses,
        c.disk_hits,
        c.evictions,
        c.stale_rebuilds,
        c.upgrades,
        c.append_updates,
        c.sweep_refreshes
    );
    if dump {
        for line in &report.lines {
            outln!("{line}");
        }
    }
    if report.issues.is_empty() {
        if verify {
            outln!("verify: ok");
        }
        ExitCode::SUCCESS
    } else {
        for issue in &report.issues {
            eprintln!("issue: {issue}");
        }
        if verify {
            eprintln!("verify: {} issue(s)", report.issues.len());
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

// ---------------------------------------------------------------- query

/// Reads NDJSON sub-commands from stdin (one request object per line,
/// blank lines skipped) for `qid query <addr> batch -`.
fn read_batch_from_stdin() -> Result<Vec<Request>, String> {
    use std::io::BufRead as _;
    let stdin = std::io::stdin();
    let mut requests = Vec::new();
    for (i, line) in stdin.lock().lines().enumerate() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let request =
            Request::decode(line.trim()).map_err(|e| format!("stdin line {}: {e}", i + 1))?;
        if matches!(request, Request::Batch { .. } | Request::Shutdown) {
            return Err(format!(
                "stdin line {}: {:?} is not allowed inside a batch",
                i + 1,
                request.command_name()
            ));
        }
        requests.push(request);
    }
    Ok(requests)
}

fn cmd_query(args: &[String]) -> ExitCode {
    let (Some(addr), Some(command)) = (args.first(), args.get(1)) else {
        usage()
    };
    if command == "batch" {
        // `batch -`: sub-commands are full JSON request lines on stdin
        // (paths are forwarded verbatim — write server-side paths).
        if args.get(2).map(String::as_str) != Some("-") {
            eprintln!("batch reads sub-commands from stdin: qid query <addr> batch -");
            usage()
        }
        let requests = match read_batch_from_stdin() {
            Ok(requests) => requests,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        return send_and_print(addr, &Request::Batch { requests });
    }
    if command == "trace" {
        return cmd_trace(addr, &args[2..]);
    }
    // `unload --all` purges the whole cache; no dataset key involved.
    if command == "unload" && args[2..].iter().any(|a| a == "--all") {
        if args[2..].len() != 1 {
            eprintln!("unload --all takes no other arguments");
            usage()
        }
        return send_and_print(addr, &Request::UnloadAll);
    }
    let needs_path = !matches!(command.as_str(), "metrics" | "shutdown");
    let opts = if needs_path {
        let Some(path) = args.get(2).cloned() else {
            eprintln!("{command} requires a data.csv path");
            usage()
        };
        parse_opts(command.clone(), path, &args[3..])
    } else {
        parse_opts(command.clone(), String::new(), &args[2..])
    };
    // Send the server an absolute path: the daemon's working directory
    // is generally not the client's.
    let path = if needs_path {
        std::fs::canonicalize(&opts.path)
            .ok()
            .and_then(|p| p.to_str().map(str::to_string))
            .unwrap_or_else(|| opts.path.clone())
    } else {
        String::new()
    };
    let ds = DatasetRef {
        path,
        eps: opts.eps,
        seed: opts.seed,
    };
    let request = match command.as_str() {
        "load" => Request::Load {
            ds,
            mode: if opts.stream {
                LoadMode::Stream
            } else {
                LoadMode::Memory
            },
        },
        "audit" => Request::Audit {
            ds,
            max_key_size: opts.max_key_size,
        },
        "key" => Request::Key { ds },
        "check" => {
            let Some(spec) = &opts.attrs else {
                eprintln!("check requires --attrs");
                return ExitCode::FAILURE;
            };
            Request::Check {
                ds,
                attrs: split_attr_spec(spec),
            }
        }
        "sketch" => {
            let Some(spec) = &opts.attrs else {
                eprintln!("sketch requires --attrs");
                return ExitCode::FAILURE;
            };
            Request::Sketch {
                ds,
                attrs: split_attr_spec(spec),
            }
        }
        "mask" => Request::Mask {
            ds,
            budget: opts.budget,
        },
        "stats" => Request::Stats { ds },
        "unload" => Request::Unload { ds },
        "metrics" => Request::Metrics,
        "shutdown" => Request::Shutdown,
        other => {
            eprintln!("unknown query command {other:?}");
            usage()
        }
    };
    send_and_print(addr, &request)
}

/// `qid query <addr> trace [--last N] [--command CMD] [--min-us N]` —
/// pulls the newest matching spans out of the server's trace ring.
/// These flags are trace-specific, so they are parsed here rather than
/// in the shared `Opts`.
fn cmd_trace(addr: &str, args: &[String]) -> ExitCode {
    let mut last = DEFAULT_TRACE_LAST;
    let mut command = None;
    let mut min_us = 0u64;
    let mut args = args.iter();
    while let Some(flag) = args.next() {
        let mut take = |name: &str| -> &String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--last" => last = take("--last").parse().unwrap_or_else(|_| usage()),
            "--command" => command = Some(take("--command").clone()),
            "--min-us" => min_us = take("--min-us").parse().unwrap_or_else(|_| usage()),
            _ => {
                eprintln!("unknown flag {flag}");
                usage()
            }
        }
    }
    send_and_print(
        addr,
        &Request::Trace {
            last,
            command,
            min_us,
        },
    )
}

/// Connects, sends one request, prints the response.
fn send_and_print(addr: &str, request: &Request) -> ExitCode {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error connecting to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let response = match client.call(request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("request failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_response(&response)
}

fn print_response(response: &Response) -> ExitCode {
    match response {
        Response::Loaded {
            rows,
            attrs,
            sample,
            cached,
        } => {
            outln!(
                "loaded: {rows} rows x {attrs} attributes; sample = {sample} tuples ({})",
                if *cached { "cache hit" } else { "built" }
            );
        }
        Response::Audit { keys } => {
            outln!("minimal quasi-identifiers (on the cached sample):");
            if keys.is_empty() {
                outln!("  none — no small attribute set identifies the records");
            }
            for (names, frac) in keys.iter().take(25) {
                outln!(
                    "  {names:?} — {:.1}% of sampled rows uniquely identified",
                    100.0 * frac
                );
            }
            if keys.len() > 25 {
                outln!("  … and {} more", keys.len() - 25);
            }
        }
        Response::Key { attrs, complete } => {
            if *complete {
                outln!(
                    "greedy eps-separation key ({} attributes): {attrs:?}",
                    attrs.len()
                );
            } else {
                outln!("no key exists: the sample contains identical tuples");
            }
        }
        Response::Check { attrs, accept } => {
            outln!("{attrs:?}: {}", if *accept { "Accept" } else { "Reject" });
        }
        Response::Mask {
            suppressed,
            residual_key_size,
            full_data,
        } => {
            outln!(
                "suppress{}:",
                if *full_data {
                    ""
                } else {
                    " (planned on the cached sample)"
                }
            );
            if suppressed.is_empty() {
                outln!("  nothing — no quasi-identifier fits that budget");
            }
            for name in suppressed {
                outln!("  {name}");
            }
            match residual_key_size {
                Some(s) => outln!("released view: smallest residual key has {s} attributes"),
                None => outln!("released view: no identifying attribute set remains"),
            }
        }
        Response::Stats {
            rows,
            exact,
            columns,
        } => {
            outln!(
                "{rows} rows; attribute cardinalities{}:",
                if *exact {
                    ""
                } else {
                    " (KMV estimates from the stream sketch)"
                }
            );
            for (name, distinct) in columns {
                outln!(
                    "  {:<24} {:>9} distinct ({:.2}% of rows)",
                    name,
                    distinct,
                    100.0 * *distinct as f64 / (*rows).max(1) as f64
                );
            }
        }
        Response::Sketch {
            attrs,
            estimate,
            raw_pairs,
            sample_pairs,
            alpha,
            rel_error,
            k,
        } => {
            match estimate {
                Some(gamma) => outln!(
                    "{attrs:?}: ~{gamma:.0} unseparated pairs \
                     (within {:.0}% for sets of <= {k} attributes)",
                    100.0 * rel_error
                ),
                None => outln!(
                    "{attrs:?}: small — fewer than alpha = {alpha} of all pairs are \
                     unseparated (the set is close to a key)"
                ),
            }
            outln!("  raw count: {raw_pairs} of {sample_pairs} sampled pairs unseparated");
        }
        Response::Batch { results } => {
            let mut failed = false;
            for (i, result) in results.iter().enumerate() {
                outln!("[{i}]");
                failed |= print_response(result) == ExitCode::FAILURE;
            }
            outln!("batch: {} results", results.len());
            if failed {
                return ExitCode::FAILURE;
            }
        }
        Response::Unloaded { existed } => {
            if *existed {
                outln!("unloaded: entry dropped from the registry");
            } else {
                outln!("unloaded: nothing was cached for that key");
            }
        }
        Response::Metrics(report) => {
            outln!(
                "server: version {}, up {} s",
                report.version,
                report.uptime_seconds
            );
            outln!(
                "durability: {} prior lives of this cache dir, \
                 {} journal events replayed at startup",
                report.restarts,
                report.wal_replayed_events
            );
            outln!(
                "registry: {} datasets ({} bytes resident), {} cache hits, \
                 {} cache misses, {} disk hits",
                report.datasets,
                report.cache_bytes,
                report.cache_hits,
                report.cache_misses,
                report.cache_disk_hits
            );
            outln!(
                "lifecycle: {} evictions, {} stale rebuilds, {} upgrades, \
                 {} append updates, {} sweep refreshes",
                report.cache_evictions,
                report.cache_stale_rebuilds,
                report.cache_upgrades,
                report.cache_append_updates,
                report.cache_sweep_refreshes
            );
            outln!(
                "connections: {} accepted; hardening: {} rejected busy, \
                 {} oversize lines rejected, {} rate-limited",
                report.connections,
                report.rejected_busy,
                report.rejected_oversize,
                report.rejected_rate
            );
            if !report.poller_connections.is_empty() {
                outln!(
                    "pollers: {:?} connections per shard, {} writes parked",
                    report.poller_connections,
                    report.writes_parked
                );
            }
            outln!(
                "wire: {} bytes read, {} bytes written \
                 (cross-check against a load harness's sent/received totals)",
                report.bytes_read,
                report.bytes_written
            );
            outln!("command     count  errors  latency_us      p50_us      p99_us");
            for c in &report.commands {
                outln!(
                    "  {:<9} {:>5} {:>7} {:>11} {:>11} {:>11}",
                    c.name,
                    c.count,
                    c.errors,
                    c.latency_us,
                    c.p50_us,
                    c.p99_us
                );
            }
        }
        Response::Trace { spans } => {
            if spans.is_empty() {
                outln!("trace: no matching spans recorded");
            } else {
                outln!(
                    "{:>8}  {:<9} {:<13} {:<16} {:>9} {:>9} {:>9} {:>7} {:>7} {:>9}",
                    "id",
                    "command",
                    "outcome",
                    "key",
                    "queue_us",
                    "serve_us",
                    "write_us",
                    "in_b",
                    "out_b",
                    "age_ms"
                );
                for s in spans {
                    outln!(
                        "{:>8}  {:<9} {:<13} {:<16} {:>9} {:>9} {:>9} {:>7} {:>7} {:>9}",
                        s.id,
                        s.command,
                        s.outcome,
                        if s.key.is_empty() {
                            "-"
                        } else {
                            s.key.as_str()
                        },
                        s.queue_us,
                        s.serve_us,
                        s.write_us,
                        s.bytes_in,
                        s.bytes_out,
                        s.age_ms
                    );
                }
                outln!("trace: {} spans (newest first)", spans.len());
            }
        }
        Response::ShuttingDown => outln!("server shutting down"),
        Response::LineTooLong { limit } => {
            eprintln!(
                "server rejected the request line: longer than the {limit}-byte cap \
                 (split large batches or raise --max-line-bytes)"
            );
            return ExitCode::FAILURE;
        }
        Response::RateLimited { max_rps } => {
            eprintln!(
                "server rate-limited the connection ({max_rps} requests/second); retry later"
            );
            return ExitCode::FAILURE;
        }
        Response::TooBusy { max_conns } => {
            eprintln!(
                "server is at its {max_conns}-connection capacity (--max-conns); retry later"
            );
            return ExitCode::FAILURE;
        }
        Response::Error { message } => {
            eprintln!("server error: {message}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------- bench

/// `qid bench <addr> <data.csv> [flags]` — the saturation load
/// harness (see docs/BENCHMARKS.md). Exits non-zero on transport
/// errors so CI can gate on a clean run.
fn cmd_bench(args: &[String]) -> ExitCode {
    use qid_loadgen::{LoadConfig, LoopMode, MixWeights};

    let (Some(addr), Some(path)) = (args.first().cloned(), args.get(1).cloned()) else {
        eprintln!("bench requires a server address and a data.csv path");
        usage()
    };
    let mut connections = 16usize;
    let mut duration_s = 10.0f64;
    let mut warmup_s = 1.0f64;
    let mut seed = 7u64;
    let mut eps = 0.01f64;
    let mut open = false;
    let mut rate = 0u64;
    let mut check_only = false;
    let mut json = false;
    let mut args = args[2..].iter();
    while let Some(flag) = args.next() {
        let mut take = |name: &str| -> &String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--connections" => {
                connections = take("--connections").parse().unwrap_or_else(|_| usage())
            }
            "--duration-s" => duration_s = take("--duration-s").parse().unwrap_or_else(|_| usage()),
            "--warmup-s" => warmup_s = take("--warmup-s").parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = take("--seed").parse().unwrap_or_else(|_| usage()),
            "--eps" => eps = take("--eps").parse().unwrap_or_else(|_| usage()),
            "--mode" => match take("--mode").as_str() {
                "closed" => open = false,
                "open" => open = true,
                other => {
                    eprintln!("--mode wants closed or open, not {other:?}");
                    usage()
                }
            },
            "--rate" => rate = take("--rate").parse().unwrap_or_else(|_| usage()),
            "--check-only" => check_only = true,
            "--json" => json = true,
            _ => {
                eprintln!("unknown flag {flag}");
                usage()
            }
        }
    }
    if open && rate == 0 {
        eprintln!("--mode open requires --rate RPS (the scheduled aggregate rate)");
        usage()
    }
    // The server resolves paths in its own working directory.
    let path = std::fs::canonicalize(&path)
        .ok()
        .and_then(|p| p.to_str().map(str::to_string))
        .unwrap_or(path);
    let config = LoadConfig {
        addr: addr.clone(),
        path,
        eps,
        seed,
        connections,
        duration: std::time::Duration::from_secs_f64(duration_s.max(0.1)),
        warmup: std::time::Duration::from_secs_f64(warmup_s.max(0.0)),
        mode: if open {
            LoopMode::Open { rps: rate }
        } else {
            LoopMode::Closed
        },
        weights: if check_only {
            MixWeights::check_only()
        } else {
            MixWeights::default()
        },
    };
    let report = match qid_loadgen::run(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("bench setup failed against {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        outln!("{}", report.to_json());
    } else {
        outln!(
            "{} loop, {} connections, {:.1}s measured (seed {seed}):",
            report.mode,
            report.connections,
            report.elapsed_s
        );
        outln!(
            "  {} requests ({} ok, {} errors) = {:.1} req/s",
            report.requests,
            report.ok,
            report.errors,
            report.rps
        );
        outln!(
            "  latency p50 {:.0} us, p99 {:.0} us, p999 {:.0} us",
            report.p50_us,
            report.p99_us,
            report.p999_us
        );
        outln!(
            "  wire: {} bytes sent, {} bytes received \
             (server-side totals: qid query {addr} metrics)",
            report.bytes_sent,
            report.bytes_received
        );
    }
    if report.transport_errors > 0 {
        eprintln!(
            "bench: {} transport error(s) — connections died mid-run",
            report.transport_errors
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

// -------------------------------------------------------------- one-shot

fn cmd_oneshot(opts: Opts) -> ExitCode {
    let params = FilterParams::new(opts.eps);
    // `audit` and `key` only need the Θ(m/√ε) sample: build it in one
    // streaming pass instead of materialising all n·m values.
    let streamed = matches!(opts.command.as_str(), "audit" | "key") && !opts.exact;
    if streamed {
        return cmd_streamed(&opts, params);
    }

    let ds = match read_csv_path(&opts.path, &CsvOptions::default()) {
        Ok(ds) => ds,
        Err(e) => {
            eprintln!("error reading {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    if ds.n_rows() < 2 || ds.n_attrs() == 0 {
        eprintln!("data set too small to analyse ({:?})", ds);
        return ExitCode::FAILURE;
    }
    outln!(
        "{}: {} rows x {} attributes; eps = {}, sample = {} tuples",
        opts.path,
        ds.n_rows(),
        ds.n_attrs(),
        opts.eps,
        params.tuple_sample_size(ds.n_attrs()).min(ds.n_rows())
    );

    match opts.command.as_str() {
        "stats" => {
            outln!("\nattribute cardinalities:");
            for a in 0..ds.n_attrs() {
                let attr = AttrId::new(a);
                let col = ds.column(attr);
                outln!(
                    "  {:<24} {:>9} distinct ({:.2}% of rows)",
                    ds.schema().attr(attr).name(),
                    col.dict_size(),
                    100.0 * col.dict_size() as f64 / ds.n_rows() as f64
                );
            }
        }
        "check" => {
            let Some(spec) = &opts.attrs else {
                eprintln!("check requires --attrs");
                return ExitCode::FAILURE;
            };
            let attrs = match resolve_attrs(&ds, spec) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let filter = TupleSampleFilter::build(&ds, params, opts.seed);
            let decision = filter.query(&attrs);
            outln!("\n{:?}: {decision:?}", names(&ds, &attrs));
            outln!(
                "(Accept = separates all sampled pairs — candidate quasi-identifier;\n\
                  Reject = misses ≥ one sampled pair — not an eps-separation key)"
            );
        }
        "key" => {
            // Only the --exact path reaches here.
            match exact_min_key_sampled(&ds, params, opts.seed) {
                Some(attrs) => outln!(
                    "\nexact-on-sample eps-separation key ({} attributes): {:?}",
                    attrs.len(),
                    names(&ds, &attrs)
                ),
                None => {
                    outln!("\nno key exists: the sample contains identical tuples");
                }
            }
        }
        "audit" => {
            let filter = TupleSampleFilter::build(&ds, params, opts.seed);
            print_audit(filter.sample(), &ds, opts.max_key_size, "rows");
        }
        "mask" => {
            let plan = plan_masking(&ds, params, opts.budget, opts.seed);
            outln!(
                "\nto defeat adversaries holding ≤ {} attributes, suppress:",
                opts.budget
            );
            if plan.suppressed.is_empty() {
                outln!("  nothing — no quasi-identifier fits that budget");
            }
            for a in &plan.suppressed {
                outln!("  {}", ds.schema().attr(*a).name());
            }
            match plan.residual_key_size {
                Some(s) => outln!("released view: smallest residual key has {s} attributes"),
                None => outln!("released view: no identifying attribute set remains"),
            }
        }
        other => {
            eprintln!("unknown command {other:?}");
            usage();
        }
    }
    ExitCode::SUCCESS
}

/// The streaming one-shot path for `audit` and `key`: one pass over the
/// CSV feeds a size-`r` reservoir; everything afterwards runs on the
/// retained sample.
fn cmd_streamed(opts: &Opts, params: FilterParams) -> ExitCode {
    let mut source = match CsvTupleSource::open(&opts.path, &CsvOptions::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error reading {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let filter = match tuple_filter_from_stream(&mut source, params, opts.seed) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error reading {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let (n, m) = (source.rows_read(), source.n_attrs());
    if n < 2 || m == 0 {
        eprintln!("data set too small to analyse ({n} rows x {m} attributes)");
        return ExitCode::FAILURE;
    }
    outln!(
        "{}: {} rows x {} attributes; eps = {}, sample = {} tuples (streamed)",
        opts.path,
        n,
        m,
        opts.eps,
        filter.sample().n_rows()
    );
    let sample = filter.sample();

    match opts.command.as_str() {
        "key" => {
            let result = GreedyRefineMinKey::run_on_sample(sample);
            if !result.complete {
                outln!("\nno key exists: the sample contains identical tuples");
                return ExitCode::SUCCESS;
            }
            outln!(
                "\ngreedy eps-separation key ({} attributes): {:?}",
                result.attrs.len(),
                names(sample, &result.attrs)
            );
        }
        "audit" => print_audit(sample, sample, opts.max_key_size, "sampled rows"),
        _ => unreachable!("cmd_streamed only handles audit and key"),
    }
    ExitCode::SUCCESS
}

/// Enumerates minimal keys on `sample` and prints them with unique
/// percentages computed over `frac_over` (the full dataset when it is
/// materialised, the sample itself when streaming).
fn print_audit(sample: &Dataset, frac_over: &Dataset, max_key_size: usize, rows_label: &str) {
    let keys = enumerate_minimal_keys(
        sample,
        LatticeConfig {
            max_size: max_key_size,
            max_candidates: 500_000,
        },
    );
    outln!("\nminimal quasi-identifiers with ≤ {max_key_size} attributes (on the sample):");
    if keys.is_empty() {
        outln!("  none — no small attribute set identifies the records");
    }
    for key in keys.iter().take(25) {
        let sizes = group_sizes(frac_over, key);
        let unique = sizes.iter().filter(|&&s| s == 1).count();
        outln!(
            "  {:?} — {:.1}% of {rows_label} uniquely identified",
            names(sample, key),
            100.0 * unique as f64 / frac_over.n_rows() as f64
        );
    }
    if keys.len() > 25 {
        outln!("  … and {} more", keys.len() - 25);
    }
}
